//! Multi-process worker-pool executor.
//!
//! The in-process engine ([`crate::map_reduce`]) survives task panics but
//! not process death: one SIGKILL or OOM-kill takes the whole job. This
//! module runs the same dataflow across N worker *processes* joined to a
//! driver over a Unix socket ([`crate::transport`]), so a dead worker
//! costs one task attempt, not the job:
//!
//! * the driver leases task attempts to workers and collects results;
//! * workers heartbeat from a dedicated thread; a worker silent past its
//!   deadline is declared dead (SIGKILLed if still running) and its lease
//!   reassigned to a healthy worker;
//! * dead workers are respawned with jittered exponential backoff up to a
//!   bounded budget, reusing [`JobConfig::max_attempts`] semantics for the
//!   task attempts themselves so [`JobStats`] accounting carries over;
//! * every payload is checksummed twice (outer frame + inner record
//!   frames): a worker killed mid-write surfaces as a torn frame and a
//!   retry, never as corrupt output.
//!
//! Closures cannot cross a process boundary, so pooled jobs are written
//! as [`MapReduceSpec`] implementations: named, serializable task
//! definitions that a worker process rebuilds from a [`JobRegistry`].
//! Determinism is preserved exactly — same chunking, same partitioner,
//! same stable sorts, outputs joined in task order — so a pooled run is
//! byte-identical to [`run_local`] on the same spec, which the kill-matrix
//! tests assert under SIGKILL at every (stage, task) coordinate.

use crate::codec::{decode_frames, encode_frames, verify_frames, Codec};
use crate::counters::JobStats;
use crate::fault::{FaultKind, FaultPlan, Stage};
use crate::job::{
    backoff_with_jitter, combine_partition, hash_one, reduce_sorted, JobConfig, JobError,
};
use crate::protocol::{Message, ProtocolError};
use crate::transport::{bind_socket, scratch_socket_path, FrameConn};
use std::collections::HashMap;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A named, serializable MapReduce task definition that can be shipped to
/// a worker process and rebuilt there from a [`JobRegistry`].
pub trait MapReduceSpec: Send + Sync + Sized + 'static {
    /// Input record type.
    type I: Codec + Send + Sync + 'static;
    /// Intermediate key.
    type K: Ord + Hash + Clone + Send + Sync + Codec + 'static;
    /// Intermediate value.
    type V: Send + Sync + Codec + 'static;
    /// Output record type.
    type O: Codec + Send + 'static;

    /// Registry name; must be identical in driver and worker binaries.
    const NAME: &'static str;

    /// Serialize this spec's parameters for the `Setup` frame.
    fn to_bytes(&self) -> Vec<u8>;

    /// Rebuild the spec in a worker. `None` fails the worker's setup.
    fn from_bytes(bytes: &[u8]) -> Option<Self>;

    /// The mapper (same contract as [`crate::map_reduce`]).
    fn map(&self, record: &Self::I, emit: &mut dyn FnMut(Self::K, Self::V));

    /// Whether map output is folded through [`MapReduceSpec::combine`].
    fn use_combiner(&self) -> bool {
        false
    }

    /// Local aggregation of one key run (only called when
    /// [`MapReduceSpec::use_combiner`] is true).
    fn combine(&self, _key: &Self::K, _vals: &mut Vec<Self::V>) {}

    /// The reducer (same contract as [`crate::map_reduce`]).
    fn reduce(&self, key: &Self::K, values: Vec<Self::V>, emit: &mut dyn FnMut(Self::O));
}

/// Output of a type-erased map task.
struct MapOut {
    partitions: Vec<Vec<u8>>,
    emitted: u64,
    combined: u64,
}

/// Object-safe face of a [`MapReduceSpec`], operating purely on
/// inner-framed bytes so the worker loop needs no type knowledge.
trait SpecRunner: Send + Sync {
    fn map_task(&self, input: &[u8], parts: usize) -> Result<MapOut, String>;
    fn shuffle_task(&self, input: &[u8]) -> Result<Vec<u8>, String>;
    fn reduce_task(&self, input: &[u8]) -> Result<(Vec<u8>, u64), String>;
}

struct TypedRunner<S: MapReduceSpec> {
    spec: S,
}

impl<S: MapReduceSpec> SpecRunner for TypedRunner<S> {
    fn map_task(&self, input: &[u8], parts: usize) -> Result<MapOut, String> {
        let records = decode_frames::<S::I>(input).map_err(|e| format!("map input: {e}"))?;
        let mut partitions: Vec<Vec<(S::K, S::V)>> = (0..parts).map(|_| Vec::new()).collect();
        let mut emitted = 0u64;
        for record in &records {
            self.spec.map(record, &mut |k: S::K, v: S::V| {
                let p = (hash_one(&k) % parts as u64) as usize;
                partitions[p].push((k, v));
                emitted += 1;
            });
        }
        let mut combined = emitted;
        if self.spec.use_combiner() {
            combined = 0;
            let comb = |k: &S::K, vs: &mut Vec<S::V>| self.spec.combine(k, vs);
            for part in &mut partitions {
                combined += combine_partition(part, &comb) as u64;
            }
        }
        Ok(MapOut {
            partitions: partitions.iter().map(|p| encode_frames(p)).collect(),
            emitted,
            combined,
        })
    }

    fn shuffle_task(&self, input: &[u8]) -> Result<Vec<u8>, String> {
        let mut part =
            decode_frames::<(S::K, S::V)>(input).map_err(|e| format!("shuffle input: {e}"))?;
        // Stable sort: equal keys keep map-task order, matching the
        // in-process shuffle exactly.
        part.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(encode_frames(&part))
    }

    fn reduce_task(&self, input: &[u8]) -> Result<(Vec<u8>, u64), String> {
        let part =
            decode_frames::<(S::K, S::V)>(input).map_err(|e| format!("reduce input: {e}"))?;
        let reducer =
            |k: &S::K, vs: Vec<S::V>, emit: &mut dyn FnMut(S::O)| self.spec.reduce(k, vs, emit);
        let (out, groups) = reduce_sorted(&part, &reducer);
        Ok((encode_frames(&out), groups))
    }
}

type Factory = fn(&[u8]) -> Option<Box<dyn SpecRunner>>;

fn factory<S: MapReduceSpec>(bytes: &[u8]) -> Option<Box<dyn SpecRunner>> {
    S::from_bytes(bytes).map(|spec| Box::new(TypedRunner { spec }) as Box<dyn SpecRunner>)
}

/// Name → spec factory table a worker process uses to rebuild the job it
/// was asked to run. The driver and worker binaries must register the
/// same specs (a worker binary is just `JobRegistry` + [`worker_main`]).
#[derive(Clone, Default)]
pub struct JobRegistry {
    factories: std::collections::BTreeMap<String, Factory>,
}

impl JobRegistry {
    /// An empty registry.
    pub fn new() -> JobRegistry {
        JobRegistry::default()
    }

    /// A registry with the built-in specs (currently [`WordCountSpec`]).
    pub fn with_builtins() -> JobRegistry {
        let mut reg = JobRegistry::new();
        reg.register::<WordCountSpec>();
        reg
    }

    /// Register a spec type under its [`MapReduceSpec::NAME`].
    pub fn register<S: MapReduceSpec>(&mut self) {
        self.factories.insert(S::NAME.to_string(), factory::<S>);
    }

    /// True when `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    fn make(&self, name: &str, bytes: &[u8]) -> Option<Box<dyn SpecRunner>> {
        self.factories.get(name).and_then(|f| f(bytes))
    }
}

/// The built-in word-count spec (used by tests and as a reference
/// implementation: one line of input per record, counts per word).
pub struct WordCountSpec;

impl MapReduceSpec for WordCountSpec {
    type I = String;
    type K = String;
    type V = u64;
    type O = (String, u64);

    const NAME: &'static str = "builtin.wordcount";

    fn to_bytes(&self) -> Vec<u8> {
        Vec::new()
    }

    fn from_bytes(bytes: &[u8]) -> Option<WordCountSpec> {
        bytes.is_empty().then_some(WordCountSpec)
    }

    fn map(&self, record: &String, emit: &mut dyn FnMut(String, u64)) {
        for w in record.split_whitespace() {
            emit(w.to_string(), 1);
        }
    }

    fn use_combiner(&self) -> bool {
        true
    }

    fn combine(&self, _key: &String, vals: &mut Vec<u64>) {
        let total: u64 = vals.iter().sum();
        vals.clear();
        vals.push(total);
    }

    fn reduce(&self, key: &String, values: Vec<u64>, emit: &mut dyn FnMut((String, u64))) {
        emit((key.clone(), values.iter().sum()));
    }
}

/// Pool shape and liveness policy for [`run_pooled`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker processes to keep alive.
    pub workers: usize,
    /// Command to spawn one worker: argv prefix; the driver appends the
    /// socket path and the worker id. Empty = *thread mode*: workers run
    /// as in-process threads speaking the same protocol (used by tests;
    /// process faults degrade to torn-frame + disconnect).
    pub worker_cmd: Vec<String>,
    /// How often workers must heartbeat.
    pub heartbeat_interval: Duration,
    /// Silence longer than this declares the worker dead.
    pub heartbeat_timeout: Duration,
    /// A task attempt leased longer than this is reassigned (its worker
    /// is declared dead first).
    pub lease_timeout: Duration,
    /// Replacement workers the pool may spawn per slot before giving up.
    pub max_respawns: u32,
    /// Directory for the pool's Unix socket (default: system temp dir).
    pub socket_dir: Option<PathBuf>,
}

impl PoolConfig {
    /// Thread-mode pool with `workers` workers and default liveness policy.
    pub fn with_workers(workers: usize) -> PoolConfig {
        PoolConfig {
            workers: workers.max(1),
            worker_cmd: Vec::new(),
            heartbeat_interval: Duration::from_millis(20),
            heartbeat_timeout: Duration::from_secs(2),
            lease_timeout: Duration::from_secs(60),
            max_respawns: 4,
            socket_dir: None,
        }
    }

    /// Process-mode pool spawning workers via `cmd` (argv prefix).
    pub fn with_worker_cmd(workers: usize, cmd: Vec<String>) -> PoolConfig {
        PoolConfig { worker_cmd: cmd, ..PoolConfig::with_workers(workers) }
    }
}

/// Run `spec` on the in-process engine — the byte-identical reference for
/// [`run_pooled`], and the fallback when no pool is configured.
pub fn run_local<S: MapReduceSpec>(
    spec: &S,
    input: &[S::I],
    cfg: &JobConfig,
) -> Result<(Vec<S::O>, JobStats), JobError> {
    let mapper = |rec: &S::I, emit: &mut dyn FnMut(S::K, S::V)| spec.map(rec, emit);
    let reducer = |k: &S::K, vs: Vec<S::V>, emit: &mut dyn FnMut(S::O)| spec.reduce(k, vs, emit);
    if spec.use_combiner() {
        let comb = |k: &S::K, vs: &mut Vec<S::V>| spec.combine(k, vs);
        crate::job::map_reduce(cfg, input, mapper, Some(&comb), reducer)
    } else {
        crate::job::map_reduce(cfg, input, mapper, None, reducer)
    }
}

// ---------------------------------------------------------------------------
// Driver side
// ---------------------------------------------------------------------------

/// Events the scheduler thread consumes.
enum Event {
    /// A new connection was accepted (not yet identified).
    Conn(std::os::unix::net::UnixStream),
    /// A message arrived on connection `conn_id`.
    Msg(u64, Message),
    /// Connection `conn_id`'s reader ended with `err`.
    Gone(u64, ProtocolError),
}

/// A task attempt leased to a worker.
struct Lease {
    task: usize,
    attempt: u32,
    started: Instant,
    span: Option<ngs_observe::SpanId>,
    /// Driver-tracer timestamp at which `span` began — the lower clamp
    /// bound when the worker's trace chunk is stitched under it.
    span_begin_ns: u64,
}

/// One worker slot: at most one live worker (process or thread) at a time,
/// respawned in place when it dies.
struct Slot {
    child: Option<std::process::Child>,
    conn: Option<FrameConn>,
    conn_id: Option<u64>,
    ready: bool,
    dead: bool,
    last_beat: Instant,
    lease: Option<Lease>,
    respawns_left: u32,
    span: Option<ngs_observe::SpanId>,
    /// OS pid the worker reported in `Hello` (its own pid in thread mode).
    pid: u64,
    /// Estimated ns to add to this worker's trace timestamps to land on
    /// the driver's tracer timeline (see the `Hello` handshake).
    clock_offset_ns: i64,
    /// Driver-tracer timestamp at which the worker's span began.
    span_begin_ns: u64,
}

/// Result of one finished task attempt.
struct DoneOut {
    output: Vec<Vec<u8>>,
    emitted: u64,
    combined: u64,
    groups: u64,
}

/// Per-stage scheduling state.
struct StageState {
    stage: Stage,
    tasks: Vec<TaskSlot>,
    done: usize,
}

struct TaskSlot {
    input: Vec<u8>,
    attempt: u32,
    not_before: Instant,
    assigned: bool,
    result: Option<DoneOut>,
}

fn span_path(stage: Stage) -> &'static str {
    match stage {
        Stage::Map => "mapreduce.task.map",
        Stage::Shuffle => "mapreduce.task.shuffle",
        Stage::Reduce => "mapreduce.task.reduce",
    }
}

struct Pool<'a> {
    cfg: &'a JobConfig,
    pcfg: &'a PoolConfig,
    setup: Message,
    socket_path: PathBuf,
    tx: Sender<Event>,
    events: Receiver<Event>,
    accept_stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    slots: Vec<Slot>,
    slot_of_conn: HashMap<u64, usize>,
    pending_conns: HashMap<u64, FrameConn>,
    next_conn_id: u64,
    registry: Arc<JobRegistry>,
    tracer: Option<Arc<ngs_observe::Tracer>>,
    job_span: Option<ngs_observe::SpanId>,
    // Fault-tolerance tallies folded into JobStats at the end.
    task_failures: u64,
    retried: std::collections::BTreeSet<(u8, usize)>,
    corrupt_frames: u64,
    worker_deaths: u64,
    workers_respawned: u64,
    tasks_reassigned: u64,
}

impl<'a> Pool<'a> {
    fn start(
        cfg: &'a JobConfig,
        pcfg: &'a PoolConfig,
        setup: Message,
        registry: Arc<JobRegistry>,
    ) -> Result<Pool<'a>, JobError> {
        let fail =
            |msg: String| JobError { stage: Stage::Map, task: 0, attempts: 0, last_error: msg };
        let socket_path = scratch_socket_path(pcfg.socket_dir.as_deref(), "drv");
        let listener = bind_socket(&socket_path)
            .map_err(|e| fail(format!("bind {}: {e}", socket_path.display())))?;
        let (tx, events) = std::sync::mpsc::channel();
        let accept_stop = Arc::new(AtomicBool::new(false));
        let accept_handle = {
            let tx = tx.clone();
            let stop = accept_stop.clone();
            std::thread::spawn(move || {
                while let Ok((stream, _)) = listener.accept() {
                    if stop.load(Ordering::Relaxed) || tx.send(Event::Conn(stream)).is_err() {
                        break;
                    }
                }
            })
        };
        let tracer = cfg
            .trace
            .as_ref()
            .map(|c| c.tracer().clone())
            .or_else(|| cfg.collector.as_ref().and_then(|c| c.tracer().cloned()))
            .filter(|t| t.is_enabled());
        let job_span = tracer.as_ref().map(|t| match cfg.trace.as_ref() {
            Some(ctx) => t.begin_under("mapreduce.job", ctx.parent()),
            None => t.begin("mapreduce.job"),
        });
        let n = pcfg.workers.max(1);
        let mut pool = Pool {
            cfg,
            pcfg,
            setup,
            socket_path,
            tx,
            events,
            accept_stop,
            accept_handle: Some(accept_handle),
            slots: (0..n)
                .map(|_| Slot {
                    child: None,
                    conn: None,
                    conn_id: None,
                    ready: false,
                    dead: false,
                    last_beat: Instant::now(),
                    lease: None,
                    respawns_left: pcfg.max_respawns,
                    span: None,
                    pid: 0,
                    clock_offset_ns: 0,
                    span_begin_ns: 0,
                })
                .collect(),
            slot_of_conn: HashMap::new(),
            pending_conns: HashMap::new(),
            next_conn_id: 0,
            registry,
            tracer,
            job_span,
            task_failures: 0,
            retried: std::collections::BTreeSet::new(),
            corrupt_frames: 0,
            worker_deaths: 0,
            workers_respawned: 0,
            tasks_reassigned: 0,
        };
        for idx in 0..n {
            if let Err(e) = pool.spawn_worker(idx) {
                pool.teardown();
                return Err(fail(e));
            }
        }
        Ok(pool)
    }

    /// Launch a worker (process or thread) into slot `idx`.
    fn spawn_worker(&mut self, idx: usize) -> Result<(), String> {
        let slot = &mut self.slots[idx];
        slot.ready = false;
        slot.conn = None;
        slot.conn_id = None;
        slot.last_beat = Instant::now();
        if self.pcfg.worker_cmd.is_empty() {
            // Thread mode: an in-process worker speaking the same protocol.
            let path = self.socket_path.clone();
            let registry = self.registry.clone();
            std::thread::spawn(move || {
                if let Ok(conn) = FrameConn::connect(&path) {
                    worker_loop(conn, &registry, idx as u64, false);
                }
            });
        } else {
            let mut cmd = std::process::Command::new(&self.pcfg.worker_cmd[0]);
            cmd.args(&self.pcfg.worker_cmd[1..])
                .arg(&self.socket_path)
                .arg(idx.to_string())
                .stdin(std::process::Stdio::null());
            let child = cmd
                .spawn()
                .map_err(|e| format!("spawn worker {idx} ({}): {e}", self.pcfg.worker_cmd[0]))?;
            self.slots[idx].child = Some(child);
        }
        Ok(())
    }

    /// Declare slot `idx`'s worker dead: SIGKILL + reap any process, close
    /// the socket, fail + requeue its lease, respawn if budget remains.
    fn on_worker_death(
        &mut self,
        idx: usize,
        st: &mut StageState,
        why: &str,
    ) -> Result<(), JobError> {
        if self.slots[idx].dead && self.slots[idx].conn.is_none() {
            return Ok(());
        }
        self.worker_deaths += 1;
        if let Some(c) = self.cfg.collector.as_deref() {
            c.incr("mapreduce.worker_deaths");
        }
        let slot = &mut self.slots[idx];
        if let Some(mut child) = slot.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(conn) = slot.conn.take() {
            conn.shutdown();
        }
        if let Some(cid) = slot.conn_id.take() {
            self.slot_of_conn.remove(&cid);
        }
        slot.ready = false;
        if let (Some(t), Some(span)) = (self.tracer.as_ref(), slot.span.take()) {
            t.instant_under("mapreduce.worker.died", span, why);
            t.end(span);
        }
        let lease = self.slots[idx].lease.take();
        if let Some(lease) = lease {
            self.tasks_reassigned += 1;
            if let Some(t) = self.tracer.as_ref() {
                if let Some(span) = lease.span {
                    t.end(span);
                }
            }
            self.fail_attempt(st, lease.task, lease.attempt, &format!("worker {idx} died: {why}"))?;
        }
        // Bounded respawn with jittered backoff: the sleep is tiny (base
        // retry_backoff) and happens at most max_respawns times per slot.
        let slot = &mut self.slots[idx];
        if slot.respawns_left > 0 {
            slot.respawns_left -= 1;
            let used = self.pcfg.max_respawns - slot.respawns_left;
            std::thread::sleep(backoff_with_jitter(self.cfg.retry_backoff, used, st.stage, idx));
            self.workers_respawned += 1;
            if let Some(c) = self.cfg.collector.as_deref() {
                c.incr("mapreduce.workers_respawned");
            }
            self.spawn_worker(idx).map_err(|e| JobError {
                stage: st.stage,
                task: 0,
                attempts: 0,
                last_error: e,
            })?;
        } else {
            slot.dead = true;
            if self.slots.iter().all(|s| s.dead) {
                let task = st.tasks.iter().position(|t| t.result.is_none()).unwrap_or(0);
                return Err(JobError {
                    stage: st.stage,
                    task,
                    attempts: st.tasks.get(task).map_or(0, |t| t.attempt),
                    last_error: "worker pool exhausted: every slot is out of respawns".into(),
                });
            }
        }
        Ok(())
    }

    /// Record one failed attempt of `task`; requeue it (with jittered
    /// backoff) or fail the job when attempts are exhausted.
    fn fail_attempt(
        &mut self,
        st: &mut StageState,
        task: usize,
        attempt: u32,
        error: &str,
    ) -> Result<(), JobError> {
        self.task_failures += 1;
        if let Some(c) = self.cfg.collector.as_deref() {
            c.incr("mapreduce.task_failures");
        }
        if let (Some(t), Some(parent)) = (self.tracer.as_ref(), self.job_span) {
            let mut msg = format!("task={task} attempt={attempt} error={error}");
            msg.truncate(200);
            t.instant_under("mapreduce.task.failed", parent, &msg);
        }
        let next = attempt + 1;
        if next >= self.cfg.max_attempts.max(1) {
            return Err(JobError {
                stage: st.stage,
                task,
                attempts: next,
                last_error: error.to_string(),
            });
        }
        let ts = &mut st.tasks[task];
        ts.attempt = next;
        ts.assigned = false;
        ts.not_before =
            Instant::now() + backoff_with_jitter(self.cfg.retry_backoff, next, st.stage, task);
        Ok(())
    }

    /// Hand every ready task to an idle live worker.
    fn try_assign(
        &mut self,
        st: &mut StageState,
        stage_span: Option<ngs_observe::SpanId>,
    ) -> Result<(), JobError> {
        loop {
            let now = Instant::now();
            let Some(task) = st
                .tasks
                .iter()
                .position(|t| t.result.is_none() && !t.assigned && t.not_before <= now)
            else {
                return Ok(());
            };
            let Some(widx) = self
                .slots
                .iter()
                .position(|s| s.ready && !s.dead && s.lease.is_none() && s.conn.is_some())
            else {
                return Ok(());
            };
            let attempt = st.tasks[task].attempt;
            let span = self.tracer.as_ref().zip(stage_span).map(|(t, parent)| {
                t.begin_under_detail(
                    span_path(st.stage),
                    parent,
                    &format!("task={task} attempt={attempt} worker={widx}"),
                )
            });
            let msg = Message::Task {
                stage: st.stage.code(),
                task: task as u64,
                attempt,
                trace_span: span.map_or(0, |s| s.as_u64()),
                input: st.tasks[task].input.clone(),
            };
            st.tasks[task].assigned = true;
            let span_begin_ns = self.tracer.as_ref().map_or(0, |t| t.now_ns());
            self.slots[widx].lease =
                Some(Lease { task, attempt, started: Instant::now(), span, span_begin_ns });
            let send = self.slots[widx].conn.as_mut().expect("checked above").send(&msg);
            if let Err(e) = send {
                self.on_worker_death(widx, st, &format!("send failed: {e}"))?;
            }
        }
    }

    /// Kill workers past their heartbeat or lease deadline.
    fn sweep_deadlines(&mut self, st: &mut StageState) -> Result<(), JobError> {
        let now = Instant::now();
        for idx in 0..self.slots.len() {
            let s = &self.slots[idx];
            if s.dead || !s.ready {
                continue;
            }
            if now.duration_since(s.last_beat) > self.pcfg.heartbeat_timeout {
                self.on_worker_death(idx, st, "heartbeat deadline exceeded")?;
                continue;
            }
            if let Some(lease) = &s.lease {
                if now.duration_since(lease.started) > self.pcfg.lease_timeout {
                    self.on_worker_death(idx, st, "task lease expired")?;
                }
            }
        }
        Ok(())
    }

    /// Stitch a worker's shipped trace chunk into the driver trace under
    /// `under`, clamped to `[lo, now]` on the driver timeline.
    fn ingest_chunk(
        &self,
        idx: usize,
        chunk: &[ngs_observe::trace::TraceEvent],
        under: ngs_observe::SpanId,
        lo: u64,
    ) {
        let Some(t) = self.tracer.as_ref() else { return };
        if chunk.is_empty() {
            return;
        }
        let slot = &self.slots[idx];
        let meta = ngs_observe::trace::ProcessMeta {
            pid: slot.pid as u32,
            role: format!("worker{idx}"),
            clock_offset_ns: slot.clock_offset_ns,
        };
        t.ingest(chunk, under, &meta, (lo, t.now_ns()));
    }

    fn handle_msg(&mut self, cid: u64, msg: Message, st: &mut StageState) -> Result<(), JobError> {
        match msg {
            Message::Hello { worker_id, pid, now_ns } => {
                let idx = worker_id as usize;
                let Some(mut conn) = self.pending_conns.remove(&cid) else {
                    return Ok(());
                };
                if idx >= self.slots.len() || self.slots[idx].dead || self.slots[idx].conn.is_some()
                {
                    conn.shutdown();
                    return Ok(());
                }
                // Clock-offset estimate: the worker's monotonic now,
                // bracketed by our receive time, so the error is at most
                // one send-to-dispatch latency (and always makes worker
                // events look *later*, never earlier, than they were —
                // residual error is absorbed by clamping at ingest).
                let clock_offset_ns =
                    self.tracer.as_ref().map_or(0, |t| t.now_ns() as i64 - now_ns as i64);
                let mut setup = self.setup.clone();
                if let Message::Setup { traced, clock_offset_ns: offset, .. } = &mut setup {
                    *traced = self.tracer.is_some();
                    *offset = clock_offset_ns;
                }
                if conn.send(&setup).is_err() {
                    conn.shutdown();
                    return Ok(());
                }
                let slot = &mut self.slots[idx];
                slot.conn = Some(conn);
                slot.conn_id = Some(cid);
                slot.ready = true;
                slot.last_beat = Instant::now();
                slot.pid = pid;
                slot.clock_offset_ns = clock_offset_ns;
                slot.span = self.tracer.as_ref().zip(self.job_span).map(|(t, parent)| {
                    t.begin_under_detail(
                        &format!("mapreduce.worker.{idx}"),
                        parent,
                        &format!("pid={pid} clock_offset_ns={clock_offset_ns}"),
                    )
                });
                slot.span_begin_ns = self.tracer.as_ref().map_or(0, |t| t.now_ns());
                self.slot_of_conn.insert(cid, idx);
            }
            Message::Heartbeat { worker_id, rss_bytes, peak_alloc_bytes, alloc_count } => {
                let idx = worker_id as usize;
                if let Some(slot) = self.slots.get_mut(idx) {
                    if slot.conn_id == Some(cid) {
                        slot.last_beat = Instant::now();
                        if let Some(c) = self.cfg.collector.as_deref() {
                            c.gauge_max(
                                &format!("mapreduce.worker.{idx}.peak_rss_bytes"),
                                rss_bytes as f64,
                            );
                            // Allocator stats only flow when the worker
                            // profiles memory; zero means "not tracking".
                            if peak_alloc_bytes > 0 {
                                c.gauge_max(
                                    &format!("mapreduce.worker.{idx}.peak_alloc_bytes"),
                                    peak_alloc_bytes as f64,
                                );
                            }
                            if alloc_count > 0 {
                                c.gauge_max(
                                    &format!("mapreduce.worker.{idx}.alloc_count"),
                                    alloc_count as f64,
                                );
                            }
                        }
                    }
                }
            }
            Message::Done {
                stage,
                task,
                attempt,
                emitted,
                combined,
                groups,
                busy_ns,
                output,
                trace,
                profile,
            } => {
                let Some(&idx) = self.slot_of_conn.get(&cid) else {
                    return Ok(());
                };
                // Profile samples are real CPU time regardless of lease
                // bookkeeping — fold them into this worker's lane before
                // any early return below.
                ngs_observe::profile::ingest_folded(&format!("worker{idx}"), &profile);
                let matches = self.slots[idx].lease.as_ref().is_some_and(|l| {
                    l.task == task as usize && l.attempt == attempt && stage == st.stage.code()
                });
                if !matches {
                    return Ok(());
                }
                let lease = self.slots[idx].lease.take().expect("checked above");
                if let (Some(t), Some(span)) = (self.tracer.as_ref(), lease.span) {
                    // Stitch before ending the lease span: children must
                    // close no later than their parent.
                    self.ingest_chunk(idx, &trace, span, lease.span_begin_ns);
                    t.end(span);
                }
                if let Some(c) = self.cfg.collector.as_deref() {
                    c.record_span_ns(span_path(st.stage), busy_ns, 1);
                }
                let task = task as usize;
                // Validate shape and inner checksums before trusting a
                // single byte: a corrupt buffer costs one attempt.
                let expect_bufs = match st.stage {
                    Stage::Map => match &self.setup {
                        Message::Setup { parts, .. } => *parts as usize,
                        _ => unreachable!("setup template is always Message::Setup"),
                    },
                    Stage::Shuffle | Stage::Reduce => 1,
                };
                let intact = output.len() == expect_bufs
                    && output.iter().all(|buf| verify_frames(buf).is_ok());
                if !intact {
                    self.corrupt_frames += 1;
                    if let Some(c) = self.cfg.collector.as_deref() {
                        c.incr("mapreduce.corrupt_frames");
                    }
                    return self.fail_attempt(
                        st,
                        task,
                        attempt,
                        "task output failed frame verification",
                    );
                }
                if attempt > 0 {
                    self.retried.insert((st.stage.code(), task));
                    if let Some(c) = self.cfg.collector.as_deref() {
                        c.incr("mapreduce.task_retries");
                    }
                }
                if st.tasks[task].result.is_none() {
                    st.tasks[task].result = Some(DoneOut { output, emitted, combined, groups });
                    st.done += 1;
                }
            }
            Message::Failed { stage, task, attempt, error, trace } => {
                let Some(&idx) = self.slot_of_conn.get(&cid) else {
                    return Ok(());
                };
                let matches = self.slots[idx].lease.as_ref().is_some_and(|l| {
                    l.task == task as usize && l.attempt == attempt && stage == st.stage.code()
                });
                if !matches {
                    return Ok(());
                }
                let lease = self.slots[idx].lease.take().expect("checked above");
                if let (Some(t), Some(span)) = (self.tracer.as_ref(), lease.span) {
                    self.ingest_chunk(idx, &trace, span, lease.span_begin_ns);
                    t.end(span);
                }
                self.fail_attempt(st, task as usize, attempt, &error)?;
            }
            Message::TraceFlush { worker_id, trace, profile } => {
                // Normally seen by the drain pump in teardown; mid-stage it
                // means the worker flushed out-of-band — stitch under its
                // worker span.
                let idx = worker_id as usize;
                if let Some(slot) = self.slots.get(idx) {
                    if slot.conn_id == Some(cid) {
                        ngs_observe::profile::ingest_folded(&format!("worker{idx}"), &profile);
                        if let Some(span) = slot.span {
                            self.ingest_chunk(idx, &trace, span, slot.span_begin_ns);
                        }
                    }
                }
            }
            // Workers never receive these; a confused peer is ignored.
            Message::Setup { .. } | Message::Task { .. } | Message::Drain => {}
        }
        Ok(())
    }

    /// Run one stage's tasks to completion; results in task order.
    fn run_stage(
        &mut self,
        stage: Stage,
        inputs: Vec<Vec<u8>>,
        stage_span_name: &str,
    ) -> Result<Vec<DoneOut>, JobError> {
        let stage_span = self
            .tracer
            .as_ref()
            .zip(self.job_span)
            .map(|(t, parent)| t.begin_under(stage_span_name, parent));
        let now = Instant::now();
        let mut st = StageState {
            stage,
            tasks: inputs
                .into_iter()
                .map(|input| TaskSlot {
                    input,
                    attempt: 0,
                    not_before: now,
                    assigned: false,
                    result: None,
                })
                .collect(),
            done: 0,
        };
        let result = self.drive_stage(&mut st, stage_span);
        if let (Some(t), Some(span)) = (self.tracer.as_ref(), stage_span) {
            t.end(span);
        }
        let outs = result?;
        Ok(outs)
    }

    fn drive_stage(
        &mut self,
        st: &mut StageState,
        stage_span: Option<ngs_observe::SpanId>,
    ) -> Result<Vec<DoneOut>, JobError> {
        while st.done < st.tasks.len() {
            self.try_assign(st, stage_span)?;
            match self.events.recv_timeout(Duration::from_millis(5)) {
                Ok(Event::Conn(stream)) => {
                    let cid = self.next_conn_id;
                    self.next_conn_id += 1;
                    let writer = FrameConn::from_stream(stream);
                    match writer.try_clone() {
                        Ok(mut reader) => {
                            self.pending_conns.insert(cid, writer);
                            let tx = self.tx.clone();
                            std::thread::spawn(move || loop {
                                match reader.recv() {
                                    Ok(msg) => {
                                        if tx.send(Event::Msg(cid, msg)).is_err() {
                                            break;
                                        }
                                    }
                                    Err(e) => {
                                        let _ = tx.send(Event::Gone(cid, e));
                                        break;
                                    }
                                }
                            });
                        }
                        Err(_) => writer.shutdown(),
                    }
                }
                Ok(Event::Msg(cid, msg)) => self.handle_msg(cid, msg, st)?,
                Ok(Event::Gone(cid, err)) => {
                    self.pending_conns.remove(&cid);
                    if let Some(&idx) = self.slot_of_conn.get(&cid) {
                        self.on_worker_death(idx, st, &format!("connection lost: {err}"))?;
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(JobError {
                        stage: st.stage,
                        task: 0,
                        attempts: 0,
                        last_error: "pool event channel closed".into(),
                    });
                }
            }
            self.sweep_deadlines(st)?;
        }
        Ok(st
            .tasks
            .drain(..)
            .map(|t| t.result.expect("stage finished with every task done"))
            .collect())
    }

    /// Graceful drain: tell every live worker the job is over, collect
    /// their final trace flushes, reap processes (kill stragglers), stop
    /// the accept thread.
    fn teardown(&mut self) {
        for slot in &mut self.slots {
            if let Some(conn) = slot.conn.as_mut() {
                let _ = conn.send(&Message::Drain);
            }
        }
        // Traced or CPU-profiled runs: each live worker answers `Drain`
        // with a final `TraceFlush` before closing its socket. Pump the
        // event channel until every such worker has flushed or
        // disconnected, so trace chunks land under the worker spans
        // *before* the spans end below and the last profile samples make
        // it into the merged flamegraph.
        if self.tracer.is_some() || ngs_observe::profile::active_hz().is_some() {
            let mut waiting: std::collections::HashSet<u64> =
                self.slots.iter().filter_map(|s| s.conn.as_ref().and(s.conn_id)).collect();
            let deadline = Instant::now() + Duration::from_millis(500);
            while !waiting.is_empty() {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match self.events.recv_timeout(deadline - now) {
                    Ok(Event::Msg(cid, Message::TraceFlush { worker_id, trace, profile })) => {
                        let idx = worker_id as usize;
                        if self.slots.get(idx).is_some_and(|s| s.conn_id == Some(cid)) {
                            ngs_observe::profile::ingest_folded(&format!("worker{idx}"), &profile);
                            if let Some(span) = self.slots[idx].span {
                                let lo = self.slots[idx].span_begin_ns;
                                self.ingest_chunk(idx, &trace, span, lo);
                            }
                            waiting.remove(&cid);
                        }
                    }
                    Ok(Event::Gone(cid, _)) => {
                        waiting.remove(&cid);
                    }
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
        }
        for idx in 0..self.slots.len() {
            if let Some(mut child) = self.slots[idx].child.take() {
                let deadline = Instant::now() + Duration::from_secs(2);
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(5))
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
            if let Some(conn) = self.slots[idx].conn.take() {
                conn.shutdown();
            }
            if let (Some(t), Some(span)) = (self.tracer.as_ref(), self.slots[idx].span.take()) {
                t.end(span);
            }
        }
        self.accept_stop.store(true, Ordering::Relaxed);
        // Wake the accept loop so it observes the stop flag.
        let _ = FrameConn::connect(&self.socket_path);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let (Some(t), Some(span)) = (self.tracer.as_ref(), self.job_span.take()) {
            t.end(span);
        }
        let _ = std::fs::remove_file(&self.socket_path);
    }
}

/// Run `spec` over `input` on a pool of worker processes. Output is
/// byte-identical to [`run_local`] with the same `cfg`: identical
/// chunking, partitioning, sort order, and task-order result assembly.
pub fn run_pooled<S: MapReduceSpec>(
    spec: &S,
    input: &[S::I],
    cfg: &JobConfig,
    pool: &PoolConfig,
) -> Result<(Vec<S::O>, JobStats), JobError> {
    let parts = cfg.reduce_partitions.max(1);
    let chunk_size = input.len().div_ceil(cfg.workers.max(1)).max(1);
    let map_inputs: Vec<Vec<u8>> = input.chunks(chunk_size).map(encode_frames).collect();
    let setup = Message::Setup {
        spec: S::NAME.to_string(),
        spec_bytes: spec.to_bytes(),
        parts: parts as u64,
        fault_plan: cfg.fault_plan.to_bytes(),
        heartbeat_ms: pool.heartbeat_interval.as_millis().max(1) as u64,
        // Patched per worker at `Hello`: traced mirrors the driver tracer,
        // clock_offset_ns is that worker's estimate.
        traced: false,
        profile_mem: ngs_observe::alloc::is_enabled(),
        // Mirror the driver's ambient CPU-profiler rate so worker lanes
        // sample at the same cadence and the merged flamegraph's counts
        // are comparable across processes.
        profile_hz: ngs_observe::profile::active_hz().unwrap_or(0) as u64,
        clock_offset_ns: 0,
    };
    let mut registry = JobRegistry::new();
    registry.register::<S>();
    let mut driver = Pool::start(cfg, pool, setup, Arc::new(registry))?;
    let result = run_pooled_inner::<S>(&mut driver, input.len(), map_inputs, parts);
    driver.teardown();
    result
}

fn run_pooled_inner<S: MapReduceSpec>(
    driver: &mut Pool<'_>,
    input_len: usize,
    map_inputs: Vec<Vec<u8>>,
    parts: usize,
) -> Result<(Vec<S::O>, JobStats), JobError> {
    let mut stats = JobStats { map_input_records: input_len as u64, ..Default::default() };

    // ---- Map -------------------------------------------------------------
    let t0 = Instant::now();
    let map_tasks = map_inputs.len();
    let map_done = driver.run_stage(Stage::Map, map_inputs, "mapreduce.stage.map")?;
    stats.map_time = t0.elapsed();
    for out in &map_done {
        stats.map_output_records += out.emitted;
        stats.combine_output_records += out.combined;
    }

    // ---- Shuffle ---------------------------------------------------------
    // Distributed here (unlike the inline in-process sort): one task per
    // partition, each sorting the concatenation — in map-task order — of
    // that partition's buffers. Inner frame sequences concatenate cleanly.
    let t1 = Instant::now();
    let mut shuffle_inputs: Vec<Vec<u8>> = Vec::with_capacity(parts);
    for p in 0..parts {
        let mut buf = Vec::new();
        for out in &map_done {
            buf.extend_from_slice(&out.output[p]);
        }
        if map_tasks == 0 {
            buf = encode_frames::<(S::K, S::V)>(&[]);
        }
        stats.shuffle_bytes += buf.len() as u64;
        shuffle_inputs.push(buf);
    }
    drop(map_done);
    let shuffle_done =
        driver.run_stage(Stage::Shuffle, shuffle_inputs, "mapreduce.stage.shuffle")?;
    stats.shuffle_time = t1.elapsed();

    // ---- Reduce ----------------------------------------------------------
    let t2 = Instant::now();
    let reduce_inputs: Vec<Vec<u8>> =
        shuffle_done.into_iter().map(|mut d| d.output.swap_remove(0)).collect();
    let reduce_done = driver.run_stage(Stage::Reduce, reduce_inputs, "mapreduce.stage.reduce")?;
    let mut result: Vec<S::O> = Vec::new();
    for (pi, d) in reduce_done.into_iter().enumerate() {
        stats.reduce_input_groups += d.groups;
        let records = decode_frames::<S::O>(&d.output[0]).map_err(|e| JobError {
            stage: Stage::Reduce,
            task: pi,
            attempts: 0,
            last_error: format!("reduce output: {e}"),
        })?;
        result.extend(records);
    }
    stats.reduce_output_records = result.len() as u64;
    stats.reduce_time = t2.elapsed();

    stats.task_failures = driver.task_failures;
    stats.retried_tasks = driver.retried.len() as u64;
    stats.corrupt_frames = driver.corrupt_frames;
    stats.worker_deaths = driver.worker_deaths;
    stats.workers_respawned = driver.workers_respawned;
    stats.tasks_reassigned = driver.tasks_reassigned;
    Ok((result, stats))
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Entry point for a worker process. `args` are the trailing command-line
/// arguments the driver appended: `<socket-path> <worker-id>`. Returns the
/// process exit code. The hosting binary decides how the hidden worker
/// mode is reached (e.g. a `--mr-worker` first argument).
pub fn worker_main(registry: &JobRegistry, args: &[String]) -> i32 {
    let (Some(path), Some(id)) = (args.first(), args.get(1).and_then(|s| s.parse::<u64>().ok()))
    else {
        eprintln!("mr-worker: usage: <socket-path> <worker-id>");
        return 2;
    };
    match FrameConn::connect(std::path::Path::new(path)) {
        Ok(conn) => worker_loop(conn, registry, id, true),
        Err(e) => {
            eprintln!("mr-worker {id}: {e}");
            2
        }
    }
}

/// The worker protocol loop. `process_mode` selects how `KillWorker`
/// injection dies: a real self-SIGKILL for a process, or torn-frame +
/// disconnect for a thread-mode worker (a thread cannot be SIGKILLed
/// without taking the test process with it; the driver observes the same
/// torn frame either way).
fn worker_loop(
    mut reader: FrameConn,
    registry: &JobRegistry,
    worker_id: u64,
    process_mode: bool,
) -> i32 {
    let Ok(writer) = reader.try_clone() else {
        return 2;
    };
    let writer = Arc::new(Mutex::new(writer));
    let pid = std::process::id() as u64;
    // One session tracer for the whole worker lifetime: a single epoch, so
    // the driver's one clock-offset estimate (from the `now_ns` below)
    // covers every chunk this worker ever ships.
    let session_tracer = ngs_observe::Tracer::new();
    let hello = Message::Hello { worker_id, pid, now_ns: session_tracer.now_ns() };
    if writer.lock().expect("writer lock").send(&hello).is_err() {
        return 2;
    }
    let setup = match reader.recv() {
        Ok(msg @ Message::Setup { .. }) => msg,
        _ => return 2,
    };
    let Message::Setup {
        spec,
        spec_bytes,
        parts,
        fault_plan,
        heartbeat_ms,
        traced,
        profile_mem,
        profile_hz,
        clock_offset_ns: _,
    } = setup
    else {
        unreachable!("matched above");
    };
    let Some(runner) = registry.make(&spec, &spec_bytes) else {
        eprintln!("mr-worker {worker_id}: unknown or undecodable spec {spec:?}");
        return 2;
    };
    let Some(plan) = FaultPlan::from_bytes(&fault_plan) else {
        eprintln!("mr-worker {worker_id}: bad fault plan");
        return 2;
    };
    let parts = parts as usize;
    if profile_mem {
        // The worker binary carries the same tracking allocator as the
        // driver; enabling is a no-op when it is not installed.
        ngs_observe::alloc::enable();
    }
    // CPU profiler for the worker's own span stacks: folded stacks ship
    // back with every `Done` and the final `Drain` reply, so the driver
    // merges one lane per worker process. Held for the worker lifetime;
    // drop stops the sampler thread.
    let _profiler = (profile_hz > 0)
        .then(|| ngs_observe::profile::start(profile_hz.min(u32::MAX as u64) as u32))
        .flatten();
    let tracer = if traced {
        session_tracer.set_role(&format!("worker{worker_id}"));
        Some(session_tracer)
    } else {
        None
    };

    // Heartbeats from a dedicated thread, so a worker busy in a long task
    // still proves liveness. StallHeartbeat injection raises `stalled`,
    // silencing the beacon while the worker plays dead.
    let running = Arc::new(AtomicBool::new(true));
    let stalled = Arc::new(AtomicBool::new(false));
    let beat_handle = {
        let writer = writer.clone();
        let running = running.clone();
        let stalled = stalled.clone();
        std::thread::spawn(move || {
            while running.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(heartbeat_ms));
                if stalled.load(Ordering::Relaxed) {
                    break;
                }
                let rss_bytes = ngs_observe::read_memory().rss_bytes.unwrap_or(0);
                let (peak_alloc_bytes, alloc_count) = ngs_observe::alloc::snapshot()
                    .map_or((0, 0), |s| (s.peak_live_bytes, s.alloc_count));
                let beat =
                    Message::Heartbeat { worker_id, rss_bytes, peak_alloc_bytes, alloc_count };
                if writer.lock().expect("writer lock").send(&beat).is_err() {
                    break;
                }
            }
        })
    };

    let code = loop {
        match reader.recv() {
            Ok(Message::Task { stage, task, attempt, trace_span, input }) => {
                let Some(stage) = Stage::from_code(stage) else {
                    break 2;
                };
                let fault = plan.fault_for(stage, task as usize, attempt);
                if fault == Some(FaultKind::StallHeartbeat) {
                    stalled.store(true, Ordering::Relaxed);
                    // Play dead: no heartbeats, no result, no exit. The
                    // driver's deadline sweep must kill and replace us.
                    loop {
                        std::thread::sleep(Duration::from_secs(3600));
                    }
                }
                let started = Instant::now();
                // One root span per attempt: the chunk shipped with the
                // result holds exactly this attempt's events, and its root
                // re-parents under the driver-side lease span (whose id
                // rides along in the detail for post-hoc correlation).
                let task_span = tracer.as_ref().map(|t| {
                    t.begin_under_detail(
                        "worker.task",
                        ngs_observe::SpanId::ROOT,
                        &format!("stage={stage} task={task} attempt={attempt} lease={trace_span}"),
                    )
                });
                // The raw begin/end pair above never feeds the CPU
                // profiler (only strictly-scoped guards do), so publish
                // the frame explicitly — it must exist even untraced,
                // or a profiled-but-untraced worker samples nothing.
                ngs_observe::profile::on_span_enter("worker.task");
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let _exec = tracer.as_ref().map(|t| t.span("worker.exec"));
                    run_worker_task(&*runner, stage, task as usize, attempt, &fault, &input, parts)
                }));
                ngs_observe::profile::on_span_exit();
                if let (Some(t), Some(s)) = (tracer.as_ref(), task_span) {
                    t.end(s);
                }
                let trace = tracer.as_ref().map_or_else(Vec::new, |t| t.take_events());
                let busy_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                let msg = match outcome {
                    Ok(Ok((output, emitted, combined, groups))) => Message::Done {
                        stage: stage.code(),
                        task,
                        attempt,
                        emitted,
                        combined,
                        groups,
                        busy_ns,
                        output,
                        trace,
                        profile: ngs_observe::profile::drain_folded(),
                    },
                    Ok(Err(error)) => {
                        Message::Failed { stage: stage.code(), task, attempt, error, trace }
                    }
                    Err(payload) => {
                        let error = payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "panic".into());
                        Message::Failed {
                            stage: stage.code(),
                            task,
                            attempt,
                            error: format!("panic: {error}"),
                            trace,
                        }
                    }
                };
                if fault == Some(FaultKind::KillWorker) {
                    // Die mid-result-write: half a frame on the wire, then
                    // gone. The driver must see Torn, requeue the lease,
                    // and never surface partial output.
                    let _ = writer.lock().expect("writer lock").send_torn(&msg);
                    if process_mode {
                        // Quiet both ends: the driver may SIGKILL-and-reap
                        // us the instant it sees the torn frame, leaving
                        // this grandchild to find no such pid.
                        let _ = std::process::Command::new("kill")
                            .args(["-9", &pid.to_string()])
                            .stdout(std::process::Stdio::null())
                            .stderr(std::process::Stdio::null())
                            .status();
                        std::process::abort();
                    }
                    break 0;
                }
                if writer.lock().expect("writer lock").send(&msg).is_err() {
                    break 0;
                }
            }
            Ok(Message::Drain) => {
                // Flush any events recorded outside a task attempt — and
                // the last profile samples — before the socket closes, so
                // the driver's stitched trace and merged flamegraph are
                // complete even for idle workers.
                if let Some(t) = tracer.as_ref() {
                    t.instant_under("worker.drain", ngs_observe::SpanId::ROOT, "");
                }
                let trace = tracer.as_ref().map_or_else(Vec::new, |t| t.take_events());
                let profile = ngs_observe::profile::drain_folded();
                if tracer.is_some() || !profile.is_empty() {
                    let flush = Message::TraceFlush { worker_id, trace, profile };
                    let _ = writer.lock().expect("writer lock").send(&flush);
                }
                break 0;
            }
            Ok(_) => break 2,
            // Driver gone (job done and socket closed, or driver crash):
            // nothing left to flush — exit cleanly.
            Err(_) => break 0,
        }
    };
    running.store(false, Ordering::Relaxed);
    let _ = beat_handle.join();
    code
}

type TaskOutput = (Vec<Vec<u8>>, u64, u64, u64);

/// Execute one task attempt on a worker, applying thread-level fault
/// injection (Panic / IoError / CorruptFrame) at the task boundary.
fn run_worker_task(
    runner: &dyn SpecRunner,
    stage: Stage,
    task: usize,
    attempt: u32,
    fault: &Option<FaultKind>,
    input: &[u8],
    parts: usize,
) -> Result<TaskOutput, String> {
    if *fault == Some(FaultKind::Panic) {
        panic!("injected panic in {stage} task {task} attempt {attempt}");
    }
    if *fault == Some(FaultKind::IoError) {
        return Err(format!("injected I/O error in {stage} task {task} attempt {attempt}"));
    }
    let (mut output, emitted, combined, groups) = match stage {
        Stage::Map => {
            let out = runner.map_task(input, parts)?;
            (out.partitions, out.emitted, out.combined, 0)
        }
        Stage::Shuffle => (vec![runner.shuffle_task(input)?], 0, 0, 0),
        Stage::Reduce => {
            let (buf, groups) = runner.reduce_task(input)?;
            (vec![buf], 0, 0, groups)
        }
    };
    if *fault == Some(FaultKind::CorruptFrame) {
        // Flip a bit inside the first buffer's stored checksum: the
        // driver's verify pass must reject the whole attempt.
        output[0][8] ^= 0x01;
    }
    Ok((output, emitted, combined, groups))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<String> {
        vec![
            "a b a the quick".into(),
            "b c the lazy dog".into(),
            "a dog and a fox".into(),
            "the end the end".into(),
        ]
    }

    fn cfg() -> JobConfig {
        let mut cfg = JobConfig::with_workers(2);
        cfg.reduce_partitions = 4;
        cfg.retry_backoff = Duration::from_micros(200);
        cfg
    }

    fn pool() -> PoolConfig {
        PoolConfig::with_workers(2)
    }

    #[test]
    fn pooled_matches_local_exactly() {
        let input = docs();
        let (local, _) = run_local(&WordCountSpec, &input, &cfg()).expect("local");
        let (pooled, stats) = run_pooled(&WordCountSpec, &input, &cfg(), &pool()).expect("pooled");
        // Not just the same multiset: the same order — the determinism
        // contract that makes kill-matrix byte-parity possible at all.
        assert_eq!(pooled, local);
        assert_eq!(stats.map_input_records, input.len() as u64);
        assert_eq!(stats.worker_deaths, 0);
        assert_eq!(stats.task_failures, 0);
    }

    #[test]
    fn empty_input_is_fine_pooled() {
        let input: Vec<String> = Vec::new();
        let (local, _) = run_local(&WordCountSpec, &input, &cfg()).expect("local");
        let (pooled, _) = run_pooled(&WordCountSpec, &input, &cfg(), &pool()).expect("pooled");
        assert_eq!(pooled, local);
        assert!(pooled.is_empty());
    }

    #[test]
    fn thread_faults_are_retried_in_the_pool() {
        let input = docs();
        let (clean, _) = run_local(&WordCountSpec, &input, &cfg()).expect("local");
        let mut faulty = cfg();
        faulty.fault_plan = FaultPlan::none()
            .with_fault(Stage::Map, 0, 0, FaultKind::Panic)
            .with_fault(Stage::Shuffle, 1, 0, FaultKind::IoError)
            .with_fault(Stage::Reduce, 2, 0, FaultKind::Panic);
        let (pooled, stats) = run_pooled(&WordCountSpec, &input, &faulty, &pool()).expect("pooled");
        assert_eq!(pooled, clean);
        assert_eq!(stats.task_failures, 3);
        assert_eq!(stats.retried_tasks, 3);
        assert_eq!(stats.worker_deaths, 0);
    }

    #[test]
    fn corrupt_worker_output_is_detected_and_retried() {
        let input = docs();
        let (clean, _) = run_local(&WordCountSpec, &input, &cfg()).expect("local");
        let mut faulty = cfg();
        faulty.fault_plan = FaultPlan::none().with_fault(Stage::Map, 1, 0, FaultKind::CorruptFrame);
        let (pooled, stats) = run_pooled(&WordCountSpec, &input, &faulty, &pool()).expect("pooled");
        assert_eq!(pooled, clean);
        assert_eq!(stats.corrupt_frames, 1);
        assert_eq!(stats.task_failures, 1);
        assert_eq!(stats.retried_tasks, 1);
    }

    #[test]
    fn killed_worker_tears_the_frame_and_the_lease_moves() {
        let input = docs();
        let (clean, _) = run_local(&WordCountSpec, &input, &cfg()).expect("local");
        let mut faulty = cfg();
        faulty.fault_plan = FaultPlan::none()
            .with_fault(Stage::Map, 0, 0, FaultKind::KillWorker)
            .with_fault(Stage::Reduce, 1, 0, FaultKind::KillWorker);
        let (pooled, stats) = run_pooled(&WordCountSpec, &input, &faulty, &pool()).expect("pooled");
        assert_eq!(pooled, clean);
        assert_eq!(stats.worker_deaths, 2);
        assert_eq!(stats.tasks_reassigned, 2);
        assert_eq!(stats.workers_respawned, 2);
        assert_eq!(stats.task_failures, 2);
    }

    #[test]
    fn stalled_heartbeat_is_detected_within_deadline() {
        let input = docs();
        let (clean, _) = run_local(&WordCountSpec, &input, &cfg()).expect("local");
        let mut faulty = cfg();
        faulty.fault_plan =
            FaultPlan::none().with_fault(Stage::Shuffle, 0, 0, FaultKind::StallHeartbeat);
        let mut pcfg = pool();
        pcfg.heartbeat_interval = Duration::from_millis(10);
        pcfg.heartbeat_timeout = Duration::from_millis(250);
        let started = Instant::now();
        let (pooled, stats) = run_pooled(&WordCountSpec, &input, &faulty, &pcfg).expect("pooled");
        assert_eq!(pooled, clean);
        assert_eq!(stats.worker_deaths, 1);
        assert_eq!(stats.tasks_reassigned, 1);
        // Detection must come from the heartbeat deadline (250 ms), not the
        // 60 s lease timeout.
        assert!(started.elapsed() < Duration::from_secs(30), "took {:?}", started.elapsed());
    }

    #[test]
    fn respawn_budget_exhaustion_fails_the_job() {
        let input = docs();
        let mut faulty = cfg();
        // Kill every attempt of map task 0: each death consumes a respawn
        // and an attempt; with max_attempts high the respawn budget runs
        // out first (2 slots × 1 respawn), failing the job cleanly.
        faulty.max_attempts = 64;
        for attempt in 0..64 {
            faulty.fault_plan =
                faulty.fault_plan.with_fault(Stage::Map, 0, attempt, FaultKind::KillWorker);
        }
        let mut pcfg = pool();
        pcfg.max_respawns = 1;
        let err = run_pooled(&WordCountSpec, &input, &faulty, &pcfg).expect_err("must fail");
        assert_eq!(err.stage, Stage::Map);
        assert!(err.last_error.contains("exhausted"), "{}", err.last_error);
    }

    #[test]
    fn attempt_exhaustion_fails_the_job_like_in_process() {
        let input = docs();
        let mut faulty = cfg();
        faulty.max_attempts = 2;
        faulty.fault_plan = FaultPlan::none()
            .with_fault(Stage::Reduce, 0, 0, FaultKind::IoError)
            .with_fault(Stage::Reduce, 0, 1, FaultKind::IoError);
        let err = run_pooled(&WordCountSpec, &input, &faulty, &pool()).expect_err("must fail");
        assert_eq!(err.stage, Stage::Reduce);
        assert_eq!(err.task, 0);
        assert_eq!(err.attempts, 2);
        assert!(err.last_error.contains("injected I/O error"), "{}", err.last_error);
    }

    #[test]
    fn seeded_plans_recover_in_the_pool_too() {
        let input = docs();
        let (clean, _) = run_local(&WordCountSpec, &input, &cfg()).expect("local");
        for seed in [3u64, 17, 99] {
            let mut faulty = cfg();
            faulty.fault_plan = FaultPlan::seeded(seed, 0.5);
            let (pooled, _) = run_pooled(&WordCountSpec, &input, &faulty, &pool()).expect("pooled");
            assert_eq!(pooled, clean, "seed {seed}");
        }
    }

    #[test]
    fn pooled_run_emits_worker_and_task_spans() {
        use ngs_observe::TraceEventKind;
        let input = docs();
        let tracer = Arc::new(ngs_observe::Tracer::new());
        let collector = Arc::new(ngs_observe::Collector::with_tracer(tracer.clone()));
        let mut traced = cfg();
        traced.collector = Some(collector.clone());
        run_pooled(&WordCountSpec, &input, &traced, &pool()).expect("pooled");
        let events = tracer.events();
        let begins: Vec<_> = events.iter().filter(|e| e.kind == TraceEventKind::Begin).collect();
        let by_name = |n: &str| begins.iter().filter(|e| e.name == n).count();
        assert_eq!(by_name("mapreduce.job"), 1);
        for stage in ["mapreduce.stage.map", "mapreduce.stage.shuffle", "mapreduce.stage.reduce"] {
            assert_eq!(by_name(stage), 1, "{stage}");
        }
        assert_eq!(by_name("mapreduce.worker.0"), 1);
        assert_eq!(by_name("mapreduce.worker.1"), 1);
        assert!(by_name("mapreduce.task.map") >= 1);
        assert!(by_name("mapreduce.task.shuffle") >= 1);
        assert!(by_name("mapreduce.task.reduce") >= 1);
        // Begin/end balance even across worker lifetimes.
        let ends = events.iter().filter(|e| e.kind == TraceEventKind::End).count();
        assert_eq!(begins.len(), ends);
        // Task timing reached the collector from worker-reported busy_ns.
        let report = collector.report("mr");
        assert!(report.spans.contains_key("mapreduce.task.map"));
    }

    #[test]
    fn pooled_run_stitches_worker_spans_under_leases() {
        use ngs_observe::TraceEventKind;
        let input = docs();
        let tracer = Arc::new(ngs_observe::Tracer::new());
        let collector = Arc::new(ngs_observe::Collector::with_tracer(tracer.clone()));
        let mut traced = cfg();
        traced.collector = Some(collector);
        run_pooled(&WordCountSpec, &input, &traced, &pool()).expect("pooled");

        // The stitched trace must be structurally sound end to end:
        // timestamps corrected and clamped, every worker span nested.
        let parsed = ngs_observe::traceview::parse_jsonl(&tracer.to_jsonl()).expect("parses");
        let spans = ngs_observe::traceview::check_well_formed(&parsed).expect("well-formed");

        let events = tracer.events();
        let begins: Vec<_> = events.iter().filter(|e| e.kind == TraceEventKind::Begin).collect();
        let lease_count = begins.iter().filter(|e| e.name.starts_with("mapreduce.task.")).count();
        let worker_tasks: Vec<_> = begins.iter().filter(|e| e.name == "worker.task").collect();
        assert_eq!(
            worker_tasks.len(),
            lease_count,
            "every completed lease carries exactly one shipped worker.task span"
        );
        // Each worker.task parents under a mapreduce.task.* lease span and
        // stays inside its interval.
        for wt in &worker_tasks {
            let parent = spans.get(&wt.parent).expect("parent exists");
            assert!(parent.name.starts_with("mapreduce.task."), "parent {}", parent.name);
            let node = &spans[&wt.id];
            assert!(node.start_ns >= parent.start_ns && node.end_ns <= parent.end_ns);
        }
        // worker.exec nests under worker.task (intra-chunk parentage).
        for ex in begins.iter().filter(|e| e.name == "worker.exec") {
            assert!(worker_tasks.iter().any(|wt| wt.id == ex.parent));
        }
        // The drain flush landed too: one worker.drain instant per worker,
        // parented under its mapreduce.worker.<id> span.
        let drains: Vec<_> = events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Instant && e.name == "worker.drain")
            .collect();
        assert_eq!(drains.len(), 2);
        for d in drains {
            assert!(spans[&d.parent].name.starts_with("mapreduce.worker."));
        }
    }

    #[test]
    fn registry_round_trips_builtin_specs() {
        let reg = JobRegistry::with_builtins();
        assert!(reg.contains(WordCountSpec::NAME));
        assert!(reg.make(WordCountSpec::NAME, &[]).is_some());
        assert!(reg.make(WordCountSpec::NAME, &[1]).is_none(), "bad spec bytes must not build");
        assert!(reg.make("no.such.spec", &[]).is_none());
    }
}
