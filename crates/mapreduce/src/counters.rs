//! Per-phase statistics for a MapReduce job.

use std::time::Duration;

/// Counters and timings collected while running one job — the raw material
/// for the paper's Tables 4.2 (data quantities per stage) and 4.3 (stage
/// run times).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Input records consumed by mappers.
    pub map_input_records: u64,
    /// Key/value pairs emitted by mappers (before combining).
    pub map_output_records: u64,
    /// Key/value pairs surviving the combiner (equals `map_output_records`
    /// when no combiner is installed).
    pub combine_output_records: u64,
    /// Approximate bytes moved through the shuffle.
    pub shuffle_bytes: u64,
    /// Distinct keys seen by reducers.
    pub reduce_input_groups: u64,
    /// Records emitted by reducers.
    pub reduce_output_records: u64,
    /// Wall time of the map (+combine) phase.
    pub map_time: Duration,
    /// Wall time of the shuffle (partition merge + sort + group) phase.
    pub shuffle_time: Duration,
    /// Wall time of the reduce phase.
    pub reduce_time: Duration,
    /// Bytes written to disk in spill mode (0 for in-memory shuffles).
    pub spilled_bytes: u64,
    /// Task attempts that failed (panic, injected fault, I/O error, or
    /// corrupt spill), across both stages.
    pub task_failures: u64,
    /// Tasks that needed more than one attempt to finish.
    pub retried_tasks: u64,
    /// Spill frames rejected by checksum verification.
    pub corrupt_frames: u64,
    /// DFS blocks restored to full replication after node failures
    /// (folded in by drivers that run a [`crate::BlockStore`]).
    pub re_replicated_blocks: u64,
    /// Map tasks reloaded from a checkpoint instead of recomputed
    /// (non-zero only with [`crate::JobConfig::map_checkpoint_dir`] set).
    pub map_tasks_resumed: u64,
    /// Worker processes that died (SIGKILL, OOM-kill, crash) or were
    /// declared dead after missing their heartbeat deadline. Only the
    /// multi-process executor can move this counter.
    pub worker_deaths: u64,
    /// Dead workers respawned by the driver (bounded by the pool's respawn
    /// budget; a death past the budget fails the job instead).
    pub workers_respawned: u64,
    /// Task leases reassigned to a healthy worker after their owner died
    /// or stalled. Each reassignment also counts as a `task_failures` +
    /// retry, so existing retry accounting carries over unchanged.
    pub tasks_reassigned: u64,
}

impl JobStats {
    /// Total wall time across phases.
    pub fn total_time(&self) -> Duration {
        self.map_time + self.shuffle_time + self.reduce_time
    }

    /// Fold another job's counters into this one (for multi-job pipelines).
    pub fn merge(&mut self, other: &JobStats) {
        self.map_input_records += other.map_input_records;
        self.map_output_records += other.map_output_records;
        self.combine_output_records += other.combine_output_records;
        self.shuffle_bytes += other.shuffle_bytes;
        self.reduce_input_groups += other.reduce_input_groups;
        self.reduce_output_records += other.reduce_output_records;
        self.map_time += other.map_time;
        self.shuffle_time += other.shuffle_time;
        self.reduce_time += other.reduce_time;
        self.spilled_bytes += other.spilled_bytes;
        self.task_failures += other.task_failures;
        self.retried_tasks += other.retried_tasks;
        self.corrupt_frames += other.corrupt_frames;
        self.re_replicated_blocks += other.re_replicated_blocks;
        self.map_tasks_resumed += other.map_tasks_resumed;
        self.worker_deaths += other.worker_deaths;
        self.workers_respawned += other.workers_respawned;
        self.tasks_reassigned += other.tasks_reassigned;
    }
}

/// Fold a job's counters into an observe collector under `prefix` (e.g.
/// `closet.job`): phase wall times become spans (`<prefix>.map`,
/// `<prefix>.shuffle`, `<prefix>.reduce`), everything else becomes
/// counters with the field name appended. The fault-tolerance counters
/// (`task_failures`, `retried_tasks`, `corrupt_frames`) pass through
/// unchanged, so reports surface recovery activity verbatim.
pub fn record_job_stats(collector: &ngs_observe::Collector, prefix: &str, stats: &JobStats) {
    let span_ns = |d: Duration| d.as_nanos().min(u64::MAX as u128) as u64;
    collector.record_span_ns(&format!("{prefix}.map"), span_ns(stats.map_time), 1);
    collector.record_span_ns(&format!("{prefix}.shuffle"), span_ns(stats.shuffle_time), 1);
    collector.record_span_ns(&format!("{prefix}.reduce"), span_ns(stats.reduce_time), 1);
    let counters: [(&str, u64); 15] = [
        ("map_input_records", stats.map_input_records),
        ("map_output_records", stats.map_output_records),
        ("combine_output_records", stats.combine_output_records),
        ("shuffle_bytes", stats.shuffle_bytes),
        ("reduce_input_groups", stats.reduce_input_groups),
        ("reduce_output_records", stats.reduce_output_records),
        ("spilled_bytes", stats.spilled_bytes),
        ("task_failures", stats.task_failures),
        ("retried_tasks", stats.retried_tasks),
        ("corrupt_frames", stats.corrupt_frames),
        ("re_replicated_blocks", stats.re_replicated_blocks),
        ("map_tasks_resumed", stats.map_tasks_resumed),
        ("worker_deaths", stats.worker_deaths),
        ("workers_respawned", stats.workers_respawned),
        ("tasks_reassigned", stats.tasks_reassigned),
    ];
    for (field, value) in counters {
        collector.add(&format!("{prefix}.{field}"), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = JobStats { map_input_records: 3, ..Default::default() };
        let b = JobStats {
            map_input_records: 4,
            reduce_output_records: 2,
            map_time: Duration::from_millis(5),
            task_failures: 3,
            retried_tasks: 2,
            corrupt_frames: 1,
            re_replicated_blocks: 5,
            map_tasks_resumed: 4,
            worker_deaths: 2,
            workers_respawned: 1,
            tasks_reassigned: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.map_input_records, 7);
        assert_eq!(a.reduce_output_records, 2);
        assert_eq!(a.task_failures, 3);
        assert_eq!(a.retried_tasks, 2);
        assert_eq!(a.corrupt_frames, 1);
        assert_eq!(a.re_replicated_blocks, 5);
        assert_eq!(a.map_tasks_resumed, 4);
        assert_eq!(a.worker_deaths, 2);
        assert_eq!(a.workers_respawned, 1);
        assert_eq!(a.tasks_reassigned, 3);
        assert_eq!(a.map_time, Duration::from_millis(5));
        assert_eq!(a.total_time(), Duration::from_millis(5));
    }

    #[test]
    fn record_job_stats_surfaces_fault_counters() {
        let stats = JobStats {
            map_input_records: 7,
            task_failures: 3,
            retried_tasks: 2,
            corrupt_frames: 1,
            map_tasks_resumed: 2,
            worker_deaths: 2,
            workers_respawned: 1,
            tasks_reassigned: 2,
            map_time: Duration::from_millis(4),
            ..Default::default()
        };
        let collector = ngs_observe::Collector::new();
        record_job_stats(&collector, "job", &stats);
        let report = collector.report("mr");
        assert_eq!(report.counters["job.map_input_records"], 7);
        assert_eq!(report.counters["job.task_failures"], 3);
        assert_eq!(report.counters["job.retried_tasks"], 2);
        assert_eq!(report.counters["job.corrupt_frames"], 1);
        assert_eq!(report.counters["job.map_tasks_resumed"], 2);
        assert_eq!(report.counters["job.worker_deaths"], 2);
        assert_eq!(report.counters["job.workers_respawned"], 1);
        assert_eq!(report.counters["job.tasks_reassigned"], 2);
        assert_eq!(report.spans["job.map"].total_ns, 4_000_000);
    }
}
