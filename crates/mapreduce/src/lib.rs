//! `mapreduce-lite` — a single-machine MapReduce runtime (Hadoop substitute).
//!
//! CLOSET (Chapter 4) is "designed as a series of data transformations,
//! where each transformation is a single map-reduce task" (§4.4), deployed
//! on a 32-node Hadoop cluster. This crate supplies the substrate those
//! tasks run on, scaled to one machine:
//!
//! * [`job`] — the execution engine: input splits → parallel map workers →
//!   hash-partitioned buffers (optional combiner) → shuffle (sort + group
//!   by key) → parallel reduce workers. Worker count and reduce-partition
//!   count are configurable, so the stage-time scaling of Table 4.3 can be
//!   reproduced;
//! * [`counters`] — per-phase record/byte counters and wall times, the
//!   数 the paper reports in Tables 4.2–4.3;
//! * [`codec`] — a small length-prefixed binary codec so shuffle partitions
//!   can round-trip through disk (spill mode), keeping the I/O path honest;
//! * [`dfs`] — a miniature block store (block size, replication, block
//!   placement over simulated data nodes): the HDFS-lite layer.
//!
//! Fault tolerance — Hadoop's re-execution of failed tasks — is out of
//! scope on a single machine and documented as such in `DESIGN.md`.

pub mod codec;
pub mod counters;
pub mod dfs;
pub mod job;

pub use codec::Codec;
pub use counters::JobStats;
pub use dfs::{BlockStore, DfsConfig};
pub use job::{map_reduce, map_reduce_simple, JobConfig};
