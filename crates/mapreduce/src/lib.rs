//! `mapreduce-lite` — a single-machine MapReduce runtime (Hadoop substitute).
//!
//! CLOSET (Chapter 4) is "designed as a series of data transformations,
//! where each transformation is a single map-reduce task" (§4.4), deployed
//! on a 32-node Hadoop cluster. This crate supplies the substrate those
//! tasks run on, scaled to one machine:
//!
//! * [`job`] — the execution engine: input splits → parallel map workers →
//!   hash-partitioned buffers (optional combiner) → shuffle (sort + group
//!   by key) → parallel reduce workers. Worker count and reduce-partition
//!   count are configurable, so the stage-time scaling of Table 4.3 can be
//!   reproduced;
//! * [`counters`] — per-phase record/byte counters and wall times, the
//!   numbers the paper reports in Tables 4.2–4.3, plus fault-tolerance
//!   counters (task failures, retries, corrupt frames, re-replications);
//! * [`codec`] — a small length-prefixed binary codec so shuffle partitions
//!   can round-trip through disk (spill mode) as checksummed frames,
//!   keeping the I/O path honest and corruption detectable;
//! * [`dfs`] — a miniature block store (block size, replication, block
//!   placement over simulated data nodes, re-replication and scrubbing
//!   after failures): the HDFS-lite layer;
//! * [`fault`] — deterministic fault injection, so the recovery paths
//!   above are continuously exercised by tests;
//! * [`executor`], [`protocol`], [`transport`] — the multi-process worker
//!   pool: the driver re-executes itself as N worker processes and assigns
//!   task attempts over a Unix-socket transport carrying length-prefixed,
//!   checksummed frames. Workers can be SIGKILLed mid-task (or stall their
//!   heartbeat) and the job still completes byte-identically: the driver
//!   detects torn frames and missed heartbeat/lease deadlines, reassigns
//!   the lease, and respawns dead workers within a bounded, jittered
//!   backoff budget. [`run_pooled`] is the entry point; jobs are named
//!   [`MapReduceSpec`]s resolved through a [`JobRegistry`] on the worker
//!   side, because closures cannot cross a process boundary.
//!
//! Fault tolerance follows Hadoop's task-attempt model: every map and
//! reduce task runs under `catch_unwind` and is retried with exponential
//! backoff up to [`JobConfig::max_attempts`] times; spill corruption is
//! caught by frame checksums and repaired by re-running the owning map
//! task; a task that exhausts its attempts fails the whole job with a
//! [`JobError`] instead of panicking. On a single machine the *failures*
//! must be simulated — that is [`FaultPlan`]'s job — but the recovery
//! machinery itself is the real thing. For failures of the *driver*
//! rather than a task, [`JobConfig::map_checkpoint_dir`] persists each
//! finished map task's output (atomically, self-validating), so a re-run
//! of the same job resumes past its completed map work — see
//! [`JobStats::map_tasks_resumed`].

pub mod codec;
pub mod counters;
pub mod dfs;
pub mod executor;
pub mod fault;
pub mod job;
pub mod protocol;
pub mod transport;

pub use codec::Codec;
pub use counters::{record_job_stats, JobStats};
pub use dfs::{BlockStore, DfsConfig};
pub use executor::{
    run_local, run_pooled, worker_main, JobRegistry, MapReduceSpec, PoolConfig, WordCountSpec,
};
pub use fault::{FaultKind, FaultPlan, Stage};
pub use job::{map_reduce, map_reduce_simple, JobConfig, JobError};
pub use protocol::{Message, ProtocolError};
pub use transport::FrameConn;
