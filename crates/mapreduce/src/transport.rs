//! Unix-socket transport for the worker pool.
//!
//! A [`FrameConn`] wraps one `UnixStream` and speaks the outer frame
//! format of [`crate::protocol`]. Each `send` serializes the whole frame
//! into one buffer and hands it to a single `write_all`, so a *live*
//! writer never interleaves partial frames — only process death can tear
//! one, which is exactly what the reader's torn-frame detection is for.
//! [`FrameConn::send_torn`] deliberately writes half a frame and is the
//! hook behind [`crate::FaultKind::KillWorker`] injection.

use crate::protocol::{encode_frame, read_frame, Message, ProtocolError};
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// One framed, checksummed connection end.
#[derive(Debug)]
pub struct FrameConn {
    stream: UnixStream,
}

impl FrameConn {
    /// Connect to a listening pool socket.
    pub fn connect(path: &Path) -> Result<FrameConn, ProtocolError> {
        UnixStream::connect(path)
            .map(FrameConn::from_stream)
            .map_err(|e| ProtocolError::Io(format!("connect {}: {e}", path.display())))
    }

    /// Wrap an accepted stream.
    pub fn from_stream(stream: UnixStream) -> FrameConn {
        FrameConn { stream }
    }

    /// Clone the connection (shared underlying socket) so one end can be
    /// read and written from different threads.
    pub fn try_clone(&self) -> Result<FrameConn, ProtocolError> {
        self.stream
            .try_clone()
            .map(FrameConn::from_stream)
            .map_err(|e| ProtocolError::Io(e.to_string()))
    }

    /// Send one message as one atomic frame.
    pub fn send(&mut self, msg: &Message) -> Result<(), ProtocolError> {
        self.stream
            .write_all(&encode_frame(&msg.to_payload()))
            .map_err(|e| ProtocolError::Io(e.to_string()))
    }

    /// Receive one message, blocking until a full frame arrives.
    pub fn recv(&mut self) -> Result<Message, ProtocolError> {
        Message::from_payload(&read_frame(&mut self.stream)?)
    }

    /// Write only the first half of the frame, then shut the write side —
    /// the wire image of a worker SIGKILLed mid-result. Fault injection
    /// only; the peer must observe [`ProtocolError::Torn`].
    pub fn send_torn(&mut self, msg: &Message) -> Result<(), ProtocolError> {
        let frame = encode_frame(&msg.to_payload());
        let half = &frame[..frame.len() / 2];
        self.stream.write_all(half).map_err(|e| ProtocolError::Io(e.to_string()))?;
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
        Ok(())
    }

    /// Shut down both directions; subsequent reads on the peer see EOF.
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Bind the pool listener, replacing any stale socket file left by a
/// crashed earlier driver.
pub fn bind_socket(path: &Path) -> std::io::Result<UnixListener> {
    if path.exists() {
        let _ = std::fs::remove_file(path);
    }
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    UnixListener::bind(path)
}

/// A socket path unique to this process and call site, under `dir` (or
/// the system temp dir). Kept short: `sun_path` is ~107 bytes.
pub fn scratch_socket_path(dir: Option<&Path>, tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let base = dir.map(Path::to_path_buf).unwrap_or_else(std::env::temp_dir);
    base.join(format!("mrpool_{tag}_{}_{seq}.sock", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_cross_a_socket_both_ways() {
        let path = scratch_socket_path(None, "t1");
        let listener = bind_socket(&path).expect("bind");
        let srv = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut conn = FrameConn::from_stream(stream);
            let hello = conn.recv().expect("hello");
            assert_eq!(hello, Message::Hello { worker_id: 9, pid: 1, now_ns: 5 });
            conn.send(&Message::Drain).expect("drain");
            // Peer closes after Drain: clean EOF, not an error.
            assert_eq!(conn.recv(), Err(ProtocolError::Closed));
        });
        let mut conn = FrameConn::connect(&path).expect("connect");
        conn.send(&Message::Hello { worker_id: 9, pid: 1, now_ns: 5 }).expect("send");
        assert_eq!(conn.recv().expect("recv"), Message::Drain);
        conn.shutdown();
        srv.join().expect("server thread");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_send_surfaces_as_torn_on_the_peer() {
        let path = scratch_socket_path(None, "t2");
        let listener = bind_socket(&path).expect("bind");
        let srv = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut conn = FrameConn::from_stream(stream);
            conn.recv()
        });
        let mut conn = FrameConn::connect(&path).expect("connect");
        conn.send_torn(&Message::Failed {
            stage: 0,
            task: 0,
            attempt: 0,
            error: "x".repeat(100),
            trace: vec![],
        })
        .expect("torn send");
        assert_eq!(srv.join().expect("server thread"), Err(ProtocolError::Torn));
        let _ = std::fs::remove_file(&path);
    }

    // ---- adversarial I/O: the reader must be correct for *any* byte
    // arrival pattern the kernel is allowed to produce, not just whole
    // frames. These tests drive the raw stream directly.

    /// A frame delivered one byte per write (worst-case fragmentation —
    /// the kernel may split a stream anywhere) must decode identically,
    /// including a second frame following immediately.
    #[test]
    fn one_byte_at_a_time_writes_still_frame_correctly() {
        let path = scratch_socket_path(None, "t4");
        let listener = bind_socket(&path).expect("bind");
        let srv = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut conn = FrameConn::from_stream(stream);
            (conn.recv(), conn.recv())
        });
        let first =
            Message::Failed { stage: 1, task: 2, attempt: 3, error: "boom".into(), trace: vec![] };
        let second = Message::Heartbeat {
            worker_id: 7,
            rss_bytes: 1 << 20,
            peak_alloc_bytes: 0,
            alloc_count: 0,
        };
        let mut wire = encode_frame(&first.to_payload());
        wire.extend_from_slice(&encode_frame(&second.to_payload()));
        let mut raw = std::os::unix::net::UnixStream::connect(&path).expect("connect");
        for byte in wire {
            raw.write_all(&[byte]).expect("write one byte");
        }
        let (a, b) = srv.join().expect("server thread");
        assert_eq!(a, Ok(first));
        assert_eq!(b, Ok(second));
        let _ = std::fs::remove_file(&path);
    }

    /// A peer that dies after any strict prefix of a frame must surface
    /// as `Torn` (bytes seen, frame incomplete); dying cleanly between
    /// frames is `Closed`. Exercises cuts inside the magic, inside the
    /// header, at the payload boundary, and one byte short of complete.
    #[test]
    fn disconnect_at_every_interesting_offset_is_torn_never_garbage() {
        let msg =
            Message::Failed { stage: 0, task: 9, attempt: 1, error: "x".repeat(64), trace: vec![] };
        let wire = encode_frame(&msg.to_payload());
        let header_len = 20; // magic + payload_len + checksum
        let cuts = [0usize, 1, 3, header_len - 1, header_len, header_len + 1, wire.len() - 1];
        for &cut in &cuts {
            let path = scratch_socket_path(None, "t5");
            let listener = bind_socket(&path).expect("bind");
            let srv = std::thread::spawn(move || {
                let (stream, _) = listener.accept().expect("accept");
                FrameConn::from_stream(stream).recv()
            });
            let mut raw = std::os::unix::net::UnixStream::connect(&path).expect("connect");
            raw.write_all(&wire[..cut]).expect("partial write");
            drop(raw); // disconnect mid-frame
            let got = srv.join().expect("server thread");
            let want = if cut == 0 { ProtocolError::Closed } else { ProtocolError::Torn };
            assert_eq!(got, Err(want), "cut at byte {cut} of {}", wire.len());
            let _ = std::fs::remove_file(&path);
        }
    }

    /// Frames interleaved with arbitrary pauses and splits that straddle
    /// message boundaries — each burst ends mid-frame — must still decode
    /// in order. This is the wire image of a slow or bursty peer.
    #[test]
    fn interleaved_partial_frames_decode_in_order() {
        let path = scratch_socket_path(None, "t6");
        let listener = bind_socket(&path).expect("bind");
        let msgs = vec![
            Message::Hello { worker_id: 1, pid: 100, now_ns: 0 },
            Message::Heartbeat { worker_id: 1, rss_bytes: 42, peak_alloc_bytes: 0, alloc_count: 0 },
            Message::Failed { stage: 2, task: 4, attempt: 0, error: "late".into(), trace: vec![] },
            Message::Drain,
        ];
        let expect = msgs.clone();
        let srv = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut conn = FrameConn::from_stream(stream);
            expect.iter().map(|_| conn.recv().expect("recv")).collect::<Vec<_>>()
        });
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_frame(&m.to_payload()));
        }
        // Split points chosen to land inside headers and payloads of
        // different frames, never on a frame boundary.
        let mut raw = std::os::unix::net::UnixStream::connect(&path).expect("connect");
        let mut sent = 0;
        for frac in [3usize, 7, 11, 23, 31, 57] {
            let next = (wire.len() * frac / 64).clamp(sent, wire.len());
            raw.write_all(&wire[sent..next]).expect("burst");
            sent = next;
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        raw.write_all(&wire[sent..]).expect("final burst");
        assert_eq!(srv.join().expect("server thread"), msgs);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reader_and_writer_clones_share_one_socket() {
        let path = scratch_socket_path(None, "t3");
        let listener = bind_socket(&path).expect("bind");
        let srv = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut conn = FrameConn::from_stream(stream);
            let mut got = Vec::new();
            while let Ok(msg) = conn.recv() {
                got.push(msg);
            }
            got
        });
        let conn = FrameConn::connect(&path).expect("connect");
        let mut a = conn.try_clone().expect("clone");
        let mut b = conn.try_clone().expect("clone");
        a.send(&Message::Heartbeat {
            worker_id: 0,
            rss_bytes: 1,
            peak_alloc_bytes: 0,
            alloc_count: 0,
        })
        .expect("send a");
        b.send(&Message::Heartbeat {
            worker_id: 0,
            rss_bytes: 2,
            peak_alloc_bytes: 0,
            alloc_count: 0,
        })
        .expect("send b");
        drop((a, b));
        conn.shutdown();
        let got = srv.join().expect("server thread");
        assert_eq!(got.len(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
