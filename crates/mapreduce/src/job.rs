//! The MapReduce execution engine.
//!
//! One job runs as: input split into per-worker chunks → each worker maps
//! its records, emitting `(K, V)` pairs into `reduce_partitions` buffers
//! selected by key hash → optional per-worker combiner → shuffle: the
//! per-worker buffers of each partition are concatenated, sorted by key and
//! grouped → reduce workers process partitions, each group invoking the
//! reducer once — the same dataflow as Hadoop's mapper/combiner/partitioner/
//! reducer contract (§1.3.1), minus distribution and fault tolerance.

use crate::codec::{decode_all, encode_all, Codec};
use crate::counters::JobStats;
use ngs_core_hash::hash_one;
use parking_lot::Mutex;
use std::hash::Hash;
use std::time::Instant;

/// Minimal internal hashing (FxHash-style) so the crate does not depend on
/// `ngs-core`; the partitioner only needs speed and rough uniformity.
mod ngs_core_hash {
    use std::hash::Hasher;

    #[derive(Default)]
    pub struct Fx(u64);

    impl Hasher for Fx {
        fn finish(&self) -> u64 {
            self.0
        }

        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = (self.0.rotate_left(5) ^ b as u64)
                    .wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
            }
        }

        fn write_u64(&mut self, v: u64) {
            self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
    }

    pub fn hash_one<T: std::hash::Hash>(v: &T) -> u64 {
        let mut h = Fx::default();
        v.hash(&mut h);
        h.finish()
    }
}

/// Configuration shared by all jobs in a pipeline.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Worker threads for the map and reduce phases (the "cluster size").
    pub workers: usize,
    /// Number of reduce partitions (Hadoop's number of reducers).
    pub reduce_partitions: usize,
    /// When set, shuffle partitions round-trip through files in this
    /// directory (length-prefixed frames), exercising the disk path.
    pub spill_dir: Option<std::path::PathBuf>,
}

impl JobConfig {
    /// In-memory config with `workers` threads and `4·workers` partitions.
    pub fn with_workers(workers: usize) -> JobConfig {
        JobConfig { workers: workers.max(1), reduce_partitions: workers.max(1) * 4, spill_dir: None }
    }
}

impl Default for JobConfig {
    fn default() -> JobConfig {
        JobConfig::with_workers(std::thread::available_parallelism().map_or(4, |n| n.get()))
    }
}

/// Run a full map/combine/shuffle/reduce job.
///
/// * `mapper(record, emit)` — called once per input record; `emit(k, v)`
///   routes the pair to its partition.
/// * `combiner` — optional local aggregation: called per worker per key run
///   with the values collected so far, replacing them.
/// * `reducer(key, values, emit)` — called once per distinct key.
///
/// Output order is deterministic: partitions in index order, keys sorted
/// within each partition.
#[allow(clippy::type_complexity)]
pub fn map_reduce<I, K, V, O, M, R>(
    cfg: &JobConfig,
    input: &[I],
    mapper: M,
    combiner: Option<&(dyn Fn(&K, &mut Vec<V>) + Sync)>,
    reducer: R,
) -> (Vec<O>, JobStats)
where
    I: Sync,
    K: Ord + Hash + Clone + Send + Sync + Codec,
    V: Send + Sync + Codec,
    O: Send,
    M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
    R: Fn(&K, Vec<V>, &mut dyn FnMut(O)) + Sync,
{
    let mut stats = JobStats { map_input_records: input.len() as u64, ..Default::default() };
    let workers = cfg.workers.max(1);
    let parts = cfg.reduce_partitions.max(1);

    // ---- Map phase -------------------------------------------------------
    let t0 = Instant::now();
    let chunk_size = input.len().div_ceil(workers).max(1);
    #[allow(clippy::type_complexity)] // worker -> partition -> pairs
    let map_outputs: Mutex<Vec<Vec<Vec<(K, V)>>>> = Mutex::new(Vec::new());
    let emitted = Mutex::new(0u64);
    let combined = Mutex::new(0u64);
    crossbeam::thread::scope(|scope| {
        for chunk in input.chunks(chunk_size) {
            let map_outputs = &map_outputs;
            let emitted = &emitted;
            let combined = &combined;
            let mapper = &mapper;
            scope.spawn(move |_| {
                let mut partitions: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
                let mut count = 0u64;
                for record in chunk {
                    mapper(record, &mut |k: K, v: V| {
                        let p = (hash_one(&k) % parts as u64) as usize;
                        partitions[p].push((k, v));
                        count += 1;
                    });
                }
                *emitted.lock() += count;
                // Local combine: sort each partition, fold runs of equal
                // keys through the combiner.
                if let Some(comb) = combiner {
                    let mut after = 0u64;
                    for part in &mut partitions {
                        part.sort_by(|a, b| a.0.cmp(&b.0));
                        let mut result: Vec<(K, V)> = Vec::with_capacity(part.len());
                        let drained = std::mem::take(part);
                        let mut run_key: Option<K> = None;
                        let mut run_vals: Vec<V> = Vec::new();
                        for (k, v) in drained {
                            match &run_key {
                                Some(rk) if *rk == k => run_vals.push(v),
                                _ => {
                                    if let Some(rk) = run_key.take() {
                                        comb(&rk, &mut run_vals);
                                        for v in run_vals.drain(..) {
                                            result.push((rk.clone(), v));
                                        }
                                    }
                                    run_key = Some(k);
                                    run_vals.push(v);
                                }
                            }
                        }
                        if let Some(rk) = run_key.take() {
                            comb(&rk, &mut run_vals);
                            for v in run_vals.drain(..) {
                                result.push((rk.clone(), v));
                            }
                        }
                        after += result.len() as u64;
                        *part = result;
                    }
                    *combined.lock() += after;
                }
                map_outputs.lock().push(partitions);
            });
        }
    })
    .expect("map worker panicked");
    stats.map_output_records = *emitted.lock();
    stats.combine_output_records =
        if combiner.is_some() { *combined.lock() } else { stats.map_output_records };
    stats.map_time = t0.elapsed();

    // ---- Shuffle ---------------------------------------------------------
    let t1 = Instant::now();
    let worker_outputs = map_outputs.into_inner();
    // Optionally spill each (worker, partition) buffer to disk and read it
    // back — the honest-I/O mode.
    let worker_outputs: Vec<Vec<Vec<(K, V)>>> = if let Some(dir) = &cfg.spill_dir {
        std::fs::create_dir_all(dir).expect("create spill dir");
        let mut restored = Vec::with_capacity(worker_outputs.len());
        for (wi, parts_of_worker) in worker_outputs.into_iter().enumerate() {
            let mut back = Vec::with_capacity(parts_of_worker.len());
            for (pi, part) in parts_of_worker.into_iter().enumerate() {
                let path = dir.join(format!("spill_w{wi}_p{pi}.bin"));
                let bytes = encode_all(&part);
                stats.spilled_bytes += bytes.len() as u64;
                std::fs::write(&path, &bytes).expect("write spill");
                let data = std::fs::read(&path).expect("read spill");
                let _ = std::fs::remove_file(&path);
                back.push(decode_all::<(K, V)>(&data).expect("decode spill"));
            }
            restored.push(back);
        }
        restored
    } else {
        worker_outputs
    };

    let mut partitions: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
    for worker_parts in worker_outputs {
        for (pi, mut part) in worker_parts.into_iter().enumerate() {
            stats.shuffle_bytes += (part.len() * std::mem::size_of::<(K, V)>()) as u64;
            partitions[pi].append(&mut part);
        }
    }
    // Sort each partition by key (parallel over partitions).
    crossbeam::thread::scope(|scope| {
        for part in &mut partitions {
            scope.spawn(move |_| part.sort_by(|a, b| a.0.cmp(&b.0)));
        }
    })
    .expect("shuffle worker panicked");
    stats.shuffle_time = t1.elapsed();

    // ---- Reduce ----------------------------------------------------------
    let t2 = Instant::now();
    let groups = Mutex::new(0u64);
    let outputs: Mutex<Vec<(usize, Vec<O>)>> = Mutex::new(Vec::new());
    let reducer = &reducer;
    crossbeam::thread::scope(|scope| {
        // Static assignment of partitions to `workers` reduce workers.
        let partitions = &partitions;
        let groups = &groups;
        let outputs = &outputs;
        for w in 0..workers {
            scope.spawn(move |_| {
                let mut local_groups = 0u64;
                for pi in (w..parts).step_by(workers) {
                    let part = &partitions[pi];
                    let mut out = Vec::new();
                    let mut i = 0;
                    while i < part.len() {
                        let mut j = i + 1;
                        while j < part.len() && part[j].0 == part[i].0 {
                            j += 1;
                        }
                        // Clone the group's values out of the partition.
                        let values: Vec<V> = part[i..j]
                            .iter()
                            .map(|(_, v)| {
                                // Round-trip through the codec to avoid a
                                // `V: Clone` bound: values are plain data.
                                let mut buf = Vec::new();
                                v.encode(&mut buf);
                                let mut s = buf.as_slice();
                                V::decode(&mut s).expect("codec round trip")
                            })
                            .collect();
                        local_groups += 1;
                        reducer(&part[i].0, values, &mut |o: O| out.push(o));
                        i = j;
                    }
                    outputs.lock().push((pi, out));
                }
                *groups.lock() += local_groups;
            });
        }
    })
    .expect("reduce worker panicked");
    let mut collected = outputs.into_inner();
    collected.sort_by_key(|(pi, _)| *pi);
    let mut result = Vec::new();
    for (_, mut out) in collected {
        result.append(&mut out);
    }
    stats.reduce_input_groups = *groups.lock();
    stats.reduce_output_records = result.len() as u64;
    stats.reduce_time = t2.elapsed();
    (result, stats)
}

/// Convenience wrapper without a combiner.
pub fn map_reduce_simple<I, K, V, O, M, R>(
    cfg: &JobConfig,
    input: &[I],
    mapper: M,
    reducer: R,
) -> (Vec<O>, JobStats)
where
    I: Sync,
    K: Ord + Hash + Clone + Send + Sync + Codec,
    V: Send + Sync + Codec,
    O: Send,
    M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
    R: Fn(&K, Vec<V>, &mut dyn FnMut(O)) + Sync,
{
    map_reduce(cfg, input, mapper, None, reducer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn word_count(cfg: &JobConfig, docs: &[&str]) -> Vec<(String, u64)> {
        let (mut out, _) = map_reduce_simple(
            cfg,
            docs,
            |doc: &&str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_string(), 1u64);
                }
            },
            |k: &String, vs: Vec<u64>, emit| emit((k.clone(), vs.iter().sum())),
        );
        out.sort();
        out
    }

    #[test]
    fn word_count_correct() {
        let docs = ["a b a", "b c", "a"];
        let cfg = JobConfig::with_workers(3);
        let got = word_count(&cfg, &docs);
        assert_eq!(
            got,
            vec![("a".into(), 3u64), ("b".into(), 2), ("c".into(), 1)]
        );
    }

    #[test]
    fn output_independent_of_worker_count() {
        let docs = ["x y z x", "y y", "z w x q", "m n o p q r s"];
        let baseline = word_count(&JobConfig::with_workers(1), &docs);
        for workers in [2, 3, 8] {
            assert_eq!(word_count(&JobConfig::with_workers(workers), &docs), baseline);
        }
    }

    #[test]
    fn combiner_preserves_results_and_shrinks_shuffle() {
        let docs: Vec<String> =
            (0..200).map(|i| format!("k{} k{} k{}", i % 3, i % 3, i % 5)).collect();
        let input: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
        let cfg = JobConfig::with_workers(4);
        let mapper = |doc: &&str, emit: &mut dyn FnMut(String, u64)| {
            for w in doc.split_whitespace() {
                emit(w.to_string(), 1u64);
            }
        };
        let reducer = |k: &String, vs: Vec<u64>, emit: &mut dyn FnMut((String, u64))| {
            emit((k.clone(), vs.iter().sum()))
        };
        let (mut plain, s_plain) = map_reduce(&cfg, &input, mapper, None, reducer);
        let combiner = |_k: &String, vs: &mut Vec<u64>| {
            let total: u64 = vs.iter().sum();
            vs.clear();
            vs.push(total);
        };
        let (mut combined, s_comb) = map_reduce(&cfg, &input, mapper, Some(&combiner), reducer);
        plain.sort();
        combined.sort();
        assert_eq!(plain, combined);
        assert!(s_comb.combine_output_records < s_plain.map_output_records);
    }

    #[test]
    fn spill_mode_round_trips() {
        let dir = std::env::temp_dir().join(format!("mrlite_spill_{}", std::process::id()));
        let mut cfg = JobConfig::with_workers(2);
        cfg.spill_dir = Some(dir.clone());
        let docs = ["a b", "b c c"];
        let got = word_count(&cfg, &docs);
        assert_eq!(got, vec![("a".into(), 1u64), ("b".into(), 2), ("c".into(), 2)]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn spill_mode_counts_bytes() {
        let dir = std::env::temp_dir().join(format!("mrlite_spill2_{}", std::process::id()));
        let mut cfg = JobConfig::with_workers(2);
        cfg.spill_dir = Some(dir.clone());
        let docs = ["hello world hello"];
        let (_, stats) = map_reduce_simple(
            &cfg,
            &docs,
            |doc: &&str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_string(), 1u64);
                }
            },
            |k: &String, vs: Vec<u64>, emit| emit((k.clone(), vs.len() as u64)),
        );
        assert!(stats.spilled_bytes > 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn stats_are_plausible() {
        let docs = ["a a a", "b"];
        let cfg = JobConfig::with_workers(2);
        let (_, stats) = map_reduce_simple(
            &cfg,
            &docs,
            |doc: &&str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_string(), 1u64);
                }
            },
            |k: &String, vs: Vec<u64>, emit| emit((k.clone(), vs.len() as u64)),
        );
        assert_eq!(stats.map_input_records, 2);
        assert_eq!(stats.map_output_records, 4);
        assert_eq!(stats.reduce_input_groups, 2);
        assert_eq!(stats.reduce_output_records, 2);
    }

    #[test]
    fn empty_input_is_fine() {
        let empty: Vec<&str> = Vec::new();
        let (out, stats) = map_reduce_simple(
            &JobConfig::with_workers(4),
            &empty,
            |_doc: &&str, _emit: &mut dyn FnMut(String, u64)| {},
            |k: &String, vs: Vec<u64>, emit| emit((k.clone(), vs.len() as u64)),
        );
        assert!(out.is_empty());
        assert_eq!(stats.map_input_records, 0);
    }

    proptest! {
        #[test]
        fn equals_sequential_group_by(pairs in proptest::collection::vec((0u64..50, any::<u32>()), 0..300),
                                      workers in 1usize..6) {
            // Reference: BTreeMap group-by-key, summed.
            let mut expect: BTreeMap<u64, u64> = BTreeMap::new();
            for &(k, v) in &pairs {
                *expect.entry(k).or_insert(0) += v as u64;
            }
            let cfg = JobConfig::with_workers(workers);
            let (mut got, _) = map_reduce_simple(
                &cfg,
                &pairs,
                |&(k, v): &(u64, u32), emit| emit(k, v),
                |k: &u64, vs: Vec<u32>, emit| emit((*k, vs.iter().map(|&v| v as u64).sum::<u64>())),
            );
            got.sort();
            let expect: Vec<(u64, u64)> = expect.into_iter().collect();
            prop_assert_eq!(got, expect);
        }
    }
}
