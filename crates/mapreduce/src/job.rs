//! The MapReduce execution engine.
//!
//! One job runs as: input split into per-worker chunks → each worker maps
//! its records, emitting `(K, V)` pairs into `reduce_partitions` buffers
//! selected by key hash → optional per-worker combiner → shuffle: the
//! per-worker buffers of each partition are concatenated, sorted by key and
//! grouped → reduce workers process partitions, each group invoking the
//! reducer once — the same dataflow as Hadoop's mapper/combiner/partitioner/
//! reducer contract (§1.3.1), including task-level fault tolerance:
//!
//! * every map and reduce task runs under [`std::panic::catch_unwind`]
//!   and is retried with exponential backoff up to
//!   [`JobConfig::max_attempts`] times (Hadoop's `mapred.map.max.attempts`);
//! * a map task *attempt* covers map + combine + spill write/read-back, so
//!   a corrupt or unreadable spill file re-runs the task that produced it;
//! * spill files are checksummed frames ([`crate::codec::encode_frames`]):
//!   corruption is detected, counted in [`JobStats::corrupt_frames`], and
//!   repaired by re-execution rather than propagated;
//! * a [`FaultPlan`] on the config deterministically injects panics, I/O
//!   errors, and frame corruption at `(stage, task, attempt)` coordinates,
//!   so the recovery paths are exercised by tests rather than trusted.
//!
//! A task that exhausts its attempts fails the job with [`JobError`]; no
//! panic escapes `map_reduce`.

use crate::codec::{decode_frames, encode_frames, Codec, FrameError};
use crate::counters::JobStats;
use crate::fault::{FaultKind, FaultPlan, Stage};
pub(crate) use ngs_core_hash::hash_one;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Minimal internal hashing (FxHash-style) so the crate does not depend on
/// `ngs-core`; the partitioner only needs speed and rough uniformity.
mod ngs_core_hash {
    use std::hash::Hasher;

    #[derive(Default)]
    pub struct Fx(u64);

    impl Hasher for Fx {
        fn finish(&self) -> u64 {
            self.0
        }

        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
            }
        }

        fn write_u64(&mut self, v: u64) {
            self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
    }

    pub fn hash_one<T: std::hash::Hash>(v: &T) -> u64 {
        let mut h = Fx::default();
        v.hash(&mut h);
        h.finish()
    }
}

/// Configuration shared by all jobs in a pipeline.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Worker threads for the map and reduce phases (the "cluster size").
    pub workers: usize,
    /// Number of reduce partitions (Hadoop's number of reducers).
    pub reduce_partitions: usize,
    /// When set, shuffle partitions round-trip through files in this
    /// directory (checksummed length-prefixed frames), exercising the
    /// disk path and its corruption detection.
    pub spill_dir: Option<std::path::PathBuf>,
    /// When set, every map task persists its (post-combine) partition
    /// output here as a self-validating checkpoint (`map_t<task>.ckpt`,
    /// written atomically), and later runs of the *same* job reload it
    /// instead of re-mapping — the Hadoop-style "completed map output
    /// survives a driver restart" contract. Reloaded tasks are counted in
    /// [`JobStats::map_tasks_resumed`]. A stale, truncated, or corrupt
    /// checkpoint is recomputed, never trusted. One directory per job:
    /// different jobs must not share a directory.
    pub map_checkpoint_dir: Option<std::path::PathBuf>,
    /// Attempts per task before the job fails (Hadoop default: 4).
    pub max_attempts: u32,
    /// Base delay before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Deterministic fault injection schedule (empty = no faults).
    pub fault_plan: FaultPlan,
    /// When set, every task attempt is timed under the
    /// `mapreduce.task.map` / `mapreduce.task.reduce` spans and retries are
    /// counted live (`mapreduce.task_retries`). Phase-level totals are the
    /// caller's job — fold the returned [`JobStats`] with
    /// [`crate::counters::record_job_stats`]. A collector built with
    /// [`ngs_observe::Collector::with_tracer`] additionally emits the
    /// job's trace tree (see [`JobConfig::trace`]).
    pub collector: Option<std::sync::Arc<ngs_observe::Collector>>,
    /// Explicit trace parent for this job's span tree. When `None` (the
    /// default) and the collector carries a tracer, the job parents under
    /// the calling thread's innermost open span — which is what pipelines
    /// want, since they call `map_reduce` inside a phase span. Set this
    /// when the job is launched from a thread other than the one that
    /// opened the phase span. Every traced job emits one `mapreduce.job`
    /// span, one `mapreduce.stage.{map,shuffle,reduce}` span per phase,
    /// and one span per task *attempt* (retries are sibling spans under
    /// the same stage, annotated `task=N attempt=M`). If both this and a
    /// collector tracer are set they must be the same tracer.
    pub trace: Option<ngs_observe::TraceContext>,
}

impl JobConfig {
    /// In-memory config with `workers` threads and `4·workers` partitions.
    pub fn with_workers(workers: usize) -> JobConfig {
        JobConfig {
            workers: workers.max(1),
            reduce_partitions: workers.max(1) * 4,
            spill_dir: None,
            map_checkpoint_dir: None,
            max_attempts: 4,
            retry_backoff: Duration::from_millis(2),
            fault_plan: FaultPlan::none(),
            collector: None,
            trace: None,
        }
    }
}

impl Default for JobConfig {
    fn default() -> JobConfig {
        JobConfig::with_workers(std::thread::available_parallelism().map_or(4, |n| n.get()))
    }
}

/// A task exhausted its attempts and failed the job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// The stage the failing task belonged to.
    pub stage: Stage,
    /// Task index within its stage (map: input chunk; reduce: partition).
    pub task: usize,
    /// Attempts consumed, `== max_attempts`.
    pub attempts: u32,
    /// Human-readable description of the final failure.
    pub last_error: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} task {} failed after {} attempts: {}",
            self.stage, self.task, self.attempts, self.last_error
        )
    }
}

impl std::error::Error for JobError {}

/// Fault-tolerance counters shared across worker threads.
#[derive(Default)]
struct FaultCounters {
    task_failures: AtomicU64,
    retried_tasks: AtomicU64,
    corrupt_frames: AtomicU64,
}

/// Render a panic payload for [`JobError::last_error`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Run one task to completion: call `body(attempt)` under `catch_unwind`,
/// retrying with exponential backoff until success or `max_attempts`.
/// `trace` parents each attempt's span under its stage — task attempts run
/// on worker threads whose ambient span stacks are empty, so the parent
/// must travel explicitly.
fn run_attempts<T>(
    stage: Stage,
    task: usize,
    cfg: &JobConfig,
    counters: &FaultCounters,
    trace: Option<&ngs_observe::TraceContext>,
    body: impl Fn(u32) -> Result<T, String>,
) -> Result<T, JobError> {
    let max_attempts = cfg.max_attempts.max(1);
    let span_path = match stage {
        Stage::Map => "mapreduce.task.map",
        Stage::Shuffle => "mapreduce.task.shuffle",
        Stage::Reduce => "mapreduce.task.reduce",
    };
    // Without a collector the trace events come straight from the tracer,
    // so attempts still show up in the timeline.
    let raw_trace = trace.filter(|_| cfg.collector.as_deref().is_none_or(|c| c.tracer().is_none()));
    let mut attempt = 0;
    loop {
        // The span guards live *outside* catch_unwind: a panicking attempt
        // still closes its trace span on unwind, keeping begin/end balanced.
        let detail = trace.map(|_| format!("task={task} attempt={attempt}"));
        let outcome = {
            let _span = cfg.collector.as_deref().map(|c| match trace {
                Some(ctx) if c.tracer().is_some() => {
                    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
                    c.span_traced(span_path, ctx.parent(), detail.as_deref().unwrap_or(""), threads)
                }
                _ => c.span(span_path),
            });
            let _raw = raw_trace.map(|ctx| {
                ctx.tracer().span_under_detail(
                    span_path,
                    ctx.parent(),
                    detail.as_deref().unwrap_or(""),
                )
            });
            catch_unwind(AssertUnwindSafe(|| body(attempt)))
        };
        let error = match outcome {
            Ok(Ok(value)) => {
                if attempt > 0 {
                    counters.retried_tasks.fetch_add(1, Ordering::Relaxed);
                    if let Some(c) = cfg.collector.as_deref() {
                        c.incr("mapreduce.task_retries");
                    }
                }
                return Ok(value);
            }
            Ok(Err(e)) => e,
            Err(payload) => panic_message(payload),
        };
        counters.task_failures.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = cfg.collector.as_deref() {
            c.incr("mapreduce.task_failures");
        }
        if let Some(ctx) = trace {
            let mut msg = format!("task={task} attempt={attempt} error={error}");
            msg.truncate(200);
            ctx.instant("mapreduce.task.failed", &msg);
        }
        attempt += 1;
        if attempt >= max_attempts {
            return Err(JobError { stage, task, attempts: attempt, last_error: error });
        }
        std::thread::sleep(backoff_with_jitter(cfg.retry_backoff, attempt, stage, task));
    }
}

/// The delay before retry number `attempt` (1-based): exponential in the
/// attempt (`base, 2·base, 4·base, …`) scaled by a jitter factor in
/// `[0.5, 1.0)` drawn from a RNG seeded purely by the task's coordinates.
/// Jitter de-synchronizes simultaneous retries (many tasks failing in the
/// same tick — e.g. every lease of a killed worker — would otherwise hammer
/// the scheduler in lock-step), while the coordinate seed keeps every run
/// byte-for-byte reproducible. Never exceeds the un-jittered delay.
pub(crate) fn backoff_with_jitter(
    base: Duration,
    attempt: u32,
    stage: Stage,
    task: usize,
) -> Duration {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let exp = base * (1u32 << (attempt - 1).min(16));
    let seed = hash_one(&(stage.code() as u64, task as u64, attempt as u64));
    let factor = StdRng::seed_from_u64(seed).gen_range(0.5..1.0);
    exp.mul_f64(factor)
}

/// Sort one partition by key and fold runs of equal keys through the
/// combiner in place; returns the partition's post-combine length. Shared
/// by the in-process map attempt and the worker-pool map task, so both
/// executors combine identically (a requirement for byte-identical output).
pub(crate) fn combine_partition<K, V>(
    part: &mut Vec<(K, V)>,
    comb: &(dyn Fn(&K, &mut Vec<V>) + Sync),
) -> usize
where
    K: Ord + Clone,
{
    part.sort_by(|a, b| a.0.cmp(&b.0));
    let mut result: Vec<(K, V)> = Vec::with_capacity(part.len());
    let drained = std::mem::take(part);
    let mut run_key: Option<K> = None;
    let mut run_vals: Vec<V> = Vec::new();
    for (k, v) in drained {
        match &run_key {
            Some(rk) if *rk == k => run_vals.push(v),
            _ => {
                if let Some(rk) = run_key.take() {
                    comb(&rk, &mut run_vals);
                    for v in run_vals.drain(..) {
                        result.push((rk.clone(), v));
                    }
                }
                run_key = Some(k);
                run_vals.push(v);
            }
        }
    }
    if let Some(rk) = run_key.take() {
        comb(&rk, &mut run_vals);
        for v in run_vals.drain(..) {
            result.push((rk.clone(), v));
        }
    }
    *part = result;
    part.len()
}

/// Output of one successful map task.
struct MapTaskOut<K, V> {
    partitions: Vec<Vec<(K, V)>>,
    emitted: u64,
    combined: u64,
    spilled_bytes: u64,
    /// Whether this output was reloaded from a map checkpoint instead of
    /// being recomputed.
    resumed: bool,
}

/// Map-checkpoint format magic + version; bump on any layout change so
/// older checkpoints recompute cleanly instead of decoding as garbage.
const MAP_CKPT_MAGIC: &[u8; 8] = b"MRCKPT01";

fn map_checkpoint_path(dir: &std::path::Path, task: usize) -> std::path::PathBuf {
    dir.join(format!("map_t{task}.ckpt"))
}

/// Encode a finished map task's output as a self-validating checkpoint:
/// magic, shape header (chunk length + partition count, so a checkpoint
/// taken against different input or config misses), the counters, each
/// partition as checksummed frames, and a trailing whole-file checksum.
fn encode_map_checkpoint<K: Codec, V: Codec>(out: &MapTaskOut<K, V>, chunk_len: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(MAP_CKPT_MAGIC);
    bytes.extend_from_slice(&(chunk_len as u64).to_le_bytes());
    bytes.extend_from_slice(&(out.partitions.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&out.emitted.to_le_bytes());
    bytes.extend_from_slice(&out.combined.to_le_bytes());
    for part in &out.partitions {
        let frames = encode_frames(part);
        bytes.extend_from_slice(&(frames.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&frames);
    }
    let ck = crate::codec::checksum(&bytes);
    bytes.extend_from_slice(&ck.to_le_bytes());
    bytes
}

/// Decode a map checkpoint, verifying the whole-file checksum, the magic,
/// and that the shape matches the current job (`chunk_len`, `parts`).
/// Returns `None` on any mismatch — the caller recomputes.
fn decode_map_checkpoint<K, V>(
    bytes: &[u8],
    chunk_len: usize,
    parts: usize,
) -> Option<MapTaskOut<K, V>>
where
    K: Ord + Hash + Clone + Codec,
    V: Codec,
{
    fn take<'a>(body: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
        let slice = body.get(*pos..pos.checked_add(n)?)?;
        *pos += n;
        Some(slice)
    }
    fn take_u64(body: &[u8], pos: &mut usize) -> Option<u64> {
        Some(u64::from_le_bytes(take(body, pos, 8)?.try_into().ok()?))
    }

    if bytes.len() < 16 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    if crate::codec::checksum(body) != u64::from_le_bytes(tail.try_into().ok()?) {
        return None;
    }
    let mut pos = 0usize;
    if take(body, &mut pos, 8)? != MAP_CKPT_MAGIC {
        return None;
    }
    if take_u64(body, &mut pos)? != chunk_len as u64 || take_u64(body, &mut pos)? != parts as u64 {
        return None;
    }
    let emitted = take_u64(body, &mut pos)?;
    let combined = take_u64(body, &mut pos)?;
    let mut partitions = Vec::with_capacity(parts);
    for _ in 0..parts {
        let frame_len = take_u64(body, &mut pos)?;
        let frames = take(body, &mut pos, usize::try_from(frame_len).ok()?)?;
        partitions.push(decode_frames::<(K, V)>(frames).ok()?);
    }
    if pos != body.len() {
        return None;
    }
    Some(MapTaskOut { partitions, emitted, combined, spilled_bytes: 0, resumed: true })
}

/// One map task attempt: map the chunk, combine, and (in spill mode)
/// round-trip every partition through a checksummed spill file. Any
/// injected fault, I/O error, or checksum mismatch fails the attempt.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn map_task_attempt<I, K, V, M>(
    task: usize,
    attempt: u32,
    chunk: &[I],
    parts: usize,
    cfg: &JobConfig,
    counters: &FaultCounters,
    mapper: &M,
    combiner: Option<&(dyn Fn(&K, &mut Vec<V>) + Sync)>,
) -> Result<MapTaskOut<K, V>, String>
where
    K: Ord + Hash + Clone + Codec,
    V: Codec,
    M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
{
    // Resume: a valid checkpoint from an earlier run of this job replaces
    // the whole attempt (map + combine + spill) — its frames were verified
    // when written and are re-verified here. Anything wrong with the file
    // falls through to recomputation.
    if let Some(dir) = &cfg.map_checkpoint_dir {
        if let Ok(bytes) = std::fs::read(map_checkpoint_path(dir, task)) {
            if let Some(out) = decode_map_checkpoint::<K, V>(&bytes, chunk.len(), parts) {
                return Ok(out);
            }
        }
    }

    let fault = cfg.fault_plan.fault_for(Stage::Map, task, attempt);
    if fault == Some(FaultKind::Panic) {
        panic!("injected panic in map task {task} attempt {attempt}");
    }
    if fault == Some(FaultKind::IoError) && cfg.spill_dir.is_none() {
        return Err(format!("injected I/O error in map task {task} attempt {attempt}"));
    }
    // Process-level faults degrade to plain attempt failures in-process: a
    // thread cannot be SIGKILLed, but the plan must still perturb the same
    // coordinates so portable plans exercise the retry path everywhere.
    if matches!(fault, Some(FaultKind::KillWorker | FaultKind::StallHeartbeat)) {
        return Err(format!("injected {:?} in map task {task} attempt {attempt}", fault.unwrap()));
    }

    let mut partitions: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
    let mut emitted = 0u64;
    for record in chunk {
        mapper(record, &mut |k: K, v: V| {
            let p = (hash_one(&k) % parts as u64) as usize;
            partitions[p].push((k, v));
            emitted += 1;
        });
    }

    // Local combine: sort each partition, fold runs of equal keys
    // through the combiner.
    let mut combined = emitted;
    if let Some(comb) = combiner {
        combined = 0;
        for part in &mut partitions {
            combined += combine_partition(part, comb) as u64;
        }
    }

    // Spill round-trip: write each partition as checksummed frames, read
    // it back, and verify before trusting it. This is part of the task
    // attempt on purpose — a corrupt or unreadable spill re-runs the map
    // task that owns it.
    let mut spilled_bytes = 0u64;
    if let Some(dir) = &cfg.spill_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("create spill dir {}: {e}", dir.display()))?;
        let mut restored = Vec::with_capacity(partitions.len());
        for (pi, part) in partitions.into_iter().enumerate() {
            let path = dir.join(format!("spill_t{task}_p{pi}.bin"));
            let mut bytes = encode_frames(&part);
            if fault == Some(FaultKind::IoError) && pi == 0 {
                return Err(format!(
                    "injected I/O error writing {} (attempt {attempt})",
                    path.display()
                ));
            }
            if fault == Some(FaultKind::CorruptFrame) && pi == 0 {
                // Flip a bit in the first frame's stored checksum: always
                // detectable, even for empty partitions.
                bytes[8] ^= 0x01;
            }
            spilled_bytes += bytes.len() as u64;
            // Atomic write: a crash mid-spill leaves no truncated file for
            // a later attempt (or a resumed driver) to trip over.
            ngs_durable::write_atomic(&path, &bytes)
                .map_err(|e| format!("write spill {}: {e}", path.display()))?;
            let data =
                std::fs::read(&path).map_err(|e| format!("read spill {}: {e}", path.display()))?;
            let _ = std::fs::remove_file(&path);
            match decode_frames::<(K, V)>(&data) {
                Ok(records) => restored.push(records),
                Err(err) => {
                    if err == FrameError::ChecksumMismatch {
                        counters.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                    }
                    return Err(format!("{err} in {}", path.display()));
                }
            }
        }
        partitions = restored;
    }

    let out = MapTaskOut { partitions, emitted, combined, spilled_bytes, resumed: false };

    // Persist the finished task's output before reporting success: a save
    // failure fails the attempt, so "checkpointed" always means "durably
    // on disk" (manifest-last discipline at task granularity).
    if let Some(dir) = &cfg.map_checkpoint_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("create map checkpoint dir {}: {e}", dir.display()))?;
        let path = map_checkpoint_path(dir, task);
        ngs_durable::write_atomic(&path, &encode_map_checkpoint(&out, chunk.len()))
            .map_err(|e| format!("write map checkpoint {}: {e}", path.display()))?;
    }
    Ok(out)
}

/// Run a full map/combine/shuffle/reduce job.
///
/// * `mapper(record, emit)` — called once per input record; `emit(k, v)`
///   routes the pair to its partition.
/// * `combiner` — optional local aggregation: called per worker per key run
///   with the values collected so far, replacing them.
/// * `reducer(key, values, emit)` — called once per distinct key.
///
/// Output order is deterministic — partitions in index order, keys sorted
/// within each partition — and unaffected by retries: map outputs are
/// collected by task index, not completion order, so a retried task's
/// (re-computed, identical) output lands in the same slot.
///
/// # Errors
/// [`JobError`] when any task fails [`JobConfig::max_attempts`] times.
/// Panics in the mapper/combiner/reducer are caught, retried, and — if
/// persistent — reported through the error, never propagated.
#[allow(clippy::type_complexity)]
pub fn map_reduce<I, K, V, O, M, R>(
    cfg: &JobConfig,
    input: &[I],
    mapper: M,
    combiner: Option<&(dyn Fn(&K, &mut Vec<V>) + Sync)>,
    reducer: R,
) -> Result<(Vec<O>, JobStats), JobError>
where
    I: Sync,
    K: Ord + Hash + Clone + Send + Sync + Codec,
    V: Send + Sync + Codec,
    O: Send,
    M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
    R: Fn(&K, Vec<V>, &mut dyn FnMut(O)) + Sync,
{
    let mut stats = JobStats { map_input_records: input.len() as u64, ..Default::default() };
    let workers = cfg.workers.max(1);
    let parts = cfg.reduce_partitions.max(1);
    let counters = FaultCounters::default();

    // ---- Trace scaffolding ----------------------------------------------
    // One `mapreduce.job` span for the run, one stage span per phase; task
    // attempts parent under their stage via the context handed to
    // `run_attempts`. Job/stage spans are trace-only (raw tracer spans):
    // phase *aggregates* already reach reports through `JobStats`, so
    // duplicating them as collector spans would double-count.
    let job_trace: Option<ngs_observe::TraceContext> = cfg
        .trace
        .clone()
        .or_else(|| {
            cfg.collector
                .as_ref()
                .and_then(|c| c.tracer().cloned())
                .map(ngs_observe::TraceContext::new)
        })
        .filter(|ctx| ctx.tracer().is_enabled());
    let job_span = job_trace.as_ref().map(|ctx| ctx.span("mapreduce.job"));
    let job_ctx = job_trace.as_ref().zip(job_span.as_ref()).map(|(ctx, span)| ctx.child(span.id()));

    // ---- Map phase -------------------------------------------------------
    // One task per input chunk; each task retried independently. Results
    // are joined in task order, which keeps downstream processing
    // deterministic regardless of scheduling or retries.
    let t0 = Instant::now();
    let chunk_size = input.len().div_ceil(workers).max(1);
    let chunks: Vec<&[I]> = input.chunks(chunk_size).collect();
    let mapper = &mapper;
    let counters_ref = &counters;
    let map_stage_span = job_ctx.as_ref().map(|ctx| ctx.span("mapreduce.stage.map"));
    let map_stage_ctx =
        job_ctx.as_ref().zip(map_stage_span.as_ref()).map(|(ctx, span)| ctx.child(span.id()));
    let map_stage_ctx = map_stage_ctx.as_ref();
    let map_results: Vec<Result<MapTaskOut<K, V>, JobError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(task, chunk)| {
                scope.spawn(move || {
                    run_attempts(Stage::Map, task, cfg, counters_ref, map_stage_ctx, |attempt| {
                        map_task_attempt(
                            task,
                            attempt,
                            chunk,
                            parts,
                            cfg,
                            counters_ref,
                            mapper,
                            combiner,
                        )
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("task harness must not panic")).collect()
    });
    drop(map_stage_span);
    record_stage_peak_mem(cfg, "map");
    let mut worker_outputs: Vec<Vec<Vec<(K, V)>>> = Vec::with_capacity(map_results.len());
    for result in map_results {
        let out = result?;
        stats.map_output_records += out.emitted;
        stats.combine_output_records += out.combined;
        stats.spilled_bytes += out.spilled_bytes;
        stats.map_tasks_resumed += u64::from(out.resumed);
        worker_outputs.push(out.partitions);
    }
    stats.map_time = t0.elapsed();

    // ---- Shuffle ---------------------------------------------------------
    // No retryable tasks here (pure in-memory regrouping), so the trace
    // gets the stage span only.
    let shuffle_span = job_ctx.as_ref().map(|ctx| ctx.span("mapreduce.stage.shuffle"));
    let t1 = Instant::now();
    let mut partitions: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
    for worker_parts in worker_outputs {
        for (pi, mut part) in worker_parts.into_iter().enumerate() {
            stats.shuffle_bytes += (part.len() * std::mem::size_of::<(K, V)>()) as u64;
            partitions[pi].append(&mut part);
        }
    }
    // Sort partitions by key using at most `workers` threads, each
    // handling a contiguous tile of partitions (a job with hundreds of
    // partitions must not spawn hundreds of threads).
    let tile = parts.div_ceil(workers).max(1);
    std::thread::scope(|scope| {
        for tile_slice in partitions.chunks_mut(tile) {
            scope.spawn(move || {
                for part in tile_slice {
                    part.sort_by(|a, b| a.0.cmp(&b.0));
                }
            });
        }
    });
    stats.shuffle_time = t1.elapsed();
    drop(shuffle_span);
    record_stage_peak_mem(cfg, "shuffle");

    // ---- Reduce ----------------------------------------------------------
    // One task per partition (the retry unit), executed by at most
    // `workers` threads over contiguous tiles. Retrying is safe because
    // a task only reads its partition and clones values out of it.
    let t2 = Instant::now();
    let reducer = &reducer;
    let partitions_ref = &partitions;
    let reduce_stage_span = job_ctx.as_ref().map(|ctx| ctx.span("mapreduce.stage.reduce"));
    let reduce_stage_ctx =
        job_ctx.as_ref().zip(reduce_stage_span.as_ref()).map(|(ctx, span)| ctx.child(span.id()));
    let reduce_stage_ctx = reduce_stage_ctx.as_ref();
    let reduce_results: Vec<Result<(Vec<O>, u64), JobError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..parts)
            .step_by(tile)
            .map(|start| {
                let end = (start + tile).min(parts);
                scope.spawn(move || {
                    (start..end)
                        .map(|pi| {
                            run_attempts(
                                Stage::Reduce,
                                pi,
                                cfg,
                                counters_ref,
                                reduce_stage_ctx,
                                |attempt| {
                                    reduce_task_attempt(
                                        pi,
                                        attempt,
                                        &partitions_ref[pi],
                                        cfg,
                                        reducer,
                                    )
                                },
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("task harness must not panic")).collect()
    });
    drop(reduce_stage_span);
    record_stage_peak_mem(cfg, "reduce");
    let mut result = Vec::new();
    for part_result in reduce_results {
        let (mut out, groups) = part_result?;
        stats.reduce_input_groups += groups;
        result.append(&mut out);
    }
    stats.reduce_output_records = result.len() as u64;
    stats.reduce_time = t2.elapsed();

    stats.task_failures = counters.task_failures.load(Ordering::Relaxed);
    stats.retried_tasks = counters.retried_tasks.load(Ordering::Relaxed);
    stats.corrupt_frames = counters.corrupt_frames.load(Ordering::Relaxed);
    Ok((result, stats))
}

/// Record a `mapreduce.stage.<stage>.peak_mem_bytes` max-merged gauge on the
/// job's collector at a stage boundary. Prefers the tracking allocator's
/// live-byte high-watermark (exact, when the binary runs with
/// `--profile-mem`), falling back to `/proc` peak RSS; no-op when neither
/// source is available or the job has no collector.
fn record_stage_peak_mem(cfg: &JobConfig, stage: &str) {
    let Some(collector) = cfg.collector.as_deref() else {
        return;
    };
    let peak = ngs_observe::alloc::snapshot()
        .map(|s| s.peak_live_bytes)
        .or_else(|| ngs_observe::read_memory().peak_rss_bytes);
    if let Some(peak) = peak {
        collector.gauge_max(&format!("mapreduce.stage.{stage}.peak_mem_bytes"), peak as f64);
    }
}

/// One reduce task attempt: group and reduce a single sorted partition.
fn reduce_task_attempt<K, V, O, R>(
    task: usize,
    attempt: u32,
    part: &[(K, V)],
    cfg: &JobConfig,
    reducer: &R,
) -> Result<(Vec<O>, u64), String>
where
    K: Ord + Codec,
    V: Codec,
    R: Fn(&K, Vec<V>, &mut dyn FnMut(O)) + Sync,
{
    match cfg.fault_plan.fault_for(Stage::Reduce, task, attempt) {
        Some(FaultKind::Panic) => {
            panic!("injected panic in reduce task {task} attempt {attempt}")
        }
        Some(kind) => {
            return Err(format!("injected {kind:?} in reduce task {task} attempt {attempt}"))
        }
        None => {}
    }
    Ok(reduce_sorted(part, reducer))
}

/// Group a key-sorted partition into runs and invoke the reducer once per
/// distinct key; returns `(outputs, group_count)`. Shared by the in-process
/// reduce attempt and the worker-pool reduce task.
pub(crate) fn reduce_sorted<K, V, O, R>(part: &[(K, V)], reducer: &R) -> (Vec<O>, u64)
where
    K: Ord + Codec,
    V: Codec,
    R: Fn(&K, Vec<V>, &mut dyn FnMut(O)) + Sync,
{
    let mut out = Vec::new();
    let mut groups = 0u64;
    let mut i = 0;
    while i < part.len() {
        let mut j = i + 1;
        while j < part.len() && part[j].0 == part[i].0 {
            j += 1;
        }
        // Hand the reducer owned values; `clone_via_codec` is a direct
        // clone for every provided codec (see its docs for why the
        // public API uses the codec bound instead of `V: Clone`).
        let values: Vec<V> = part[i..j].iter().map(|(_, v)| v.clone_via_codec()).collect();
        groups += 1;
        reducer(&part[i].0, values, &mut |o: O| out.push(o));
        i = j;
    }
    (out, groups)
}

/// Convenience wrapper without a combiner.
#[allow(clippy::type_complexity)]
pub fn map_reduce_simple<I, K, V, O, M, R>(
    cfg: &JobConfig,
    input: &[I],
    mapper: M,
    reducer: R,
) -> Result<(Vec<O>, JobStats), JobError>
where
    I: Sync,
    K: Ord + Hash + Clone + Send + Sync + Codec,
    V: Send + Sync + Codec,
    O: Send,
    M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
    R: Fn(&K, Vec<V>, &mut dyn FnMut(O)) + Sync,
{
    map_reduce(cfg, input, mapper, None, reducer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn word_count(cfg: &JobConfig, docs: &[&str]) -> Vec<(String, u64)> {
        let (mut out, _) = word_count_stats(cfg, docs).expect("job failed");
        out.sort();
        out
    }

    #[allow(clippy::type_complexity)]
    fn word_count_stats(
        cfg: &JobConfig,
        docs: &[&str],
    ) -> Result<(Vec<(String, u64)>, JobStats), JobError> {
        map_reduce_simple(
            cfg,
            docs,
            |doc: &&str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_string(), 1u64);
                }
            },
            |k: &String, vs: Vec<u64>, emit| emit((k.clone(), vs.iter().sum())),
        )
    }

    #[test]
    fn word_count_correct() {
        let docs = ["a b a", "b c", "a"];
        let cfg = JobConfig::with_workers(3);
        let got = word_count(&cfg, &docs);
        assert_eq!(got, vec![("a".into(), 3u64), ("b".into(), 2), ("c".into(), 1)]);
    }

    #[test]
    fn output_independent_of_worker_count() {
        let docs = ["x y z x", "y y", "z w x q", "m n o p q r s"];
        let baseline = word_count(&JobConfig::with_workers(1), &docs);
        for workers in [2, 3, 8] {
            assert_eq!(word_count(&JobConfig::with_workers(workers), &docs), baseline);
        }
    }

    #[test]
    fn combiner_preserves_results_and_shrinks_shuffle() {
        let docs: Vec<String> =
            (0..200).map(|i| format!("k{} k{} k{}", i % 3, i % 3, i % 5)).collect();
        let input: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
        let cfg = JobConfig::with_workers(4);
        let mapper = |doc: &&str, emit: &mut dyn FnMut(String, u64)| {
            for w in doc.split_whitespace() {
                emit(w.to_string(), 1u64);
            }
        };
        let reducer = |k: &String, vs: Vec<u64>, emit: &mut dyn FnMut((String, u64))| {
            emit((k.clone(), vs.iter().sum()))
        };
        let (mut plain, s_plain) =
            map_reduce(&cfg, &input, mapper, None, reducer).expect("plain job");
        let combiner = |_k: &String, vs: &mut Vec<u64>| {
            let total: u64 = vs.iter().sum();
            vs.clear();
            vs.push(total);
        };
        let (mut combined, s_comb) =
            map_reduce(&cfg, &input, mapper, Some(&combiner), reducer).expect("combined job");
        plain.sort();
        combined.sort();
        assert_eq!(plain, combined);
        assert!(s_comb.combine_output_records < s_plain.map_output_records);
    }

    #[test]
    fn spill_mode_round_trips() {
        let dir = std::env::temp_dir().join(format!("mrlite_spill_{}", std::process::id()));
        let mut cfg = JobConfig::with_workers(2);
        cfg.spill_dir = Some(dir.clone());
        let docs = ["a b", "b c c"];
        let got = word_count(&cfg, &docs);
        assert_eq!(got, vec![("a".into(), 1u64), ("b".into(), 2), ("c".into(), 2)]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn spill_mode_counts_bytes() {
        let dir = std::env::temp_dir().join(format!("mrlite_spill2_{}", std::process::id()));
        let mut cfg = JobConfig::with_workers(2);
        cfg.spill_dir = Some(dir.clone());
        let docs = ["hello world hello"];
        let (_, stats) = word_count_stats(&cfg, &docs).expect("job failed");
        assert!(stats.spilled_bytes > 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn stats_are_plausible() {
        let docs = ["a a a", "b"];
        let cfg = JobConfig::with_workers(2);
        let (_, stats) = word_count_stats(&cfg, &docs).expect("job failed");
        assert_eq!(stats.map_input_records, 2);
        assert_eq!(stats.map_output_records, 4);
        assert_eq!(stats.reduce_input_groups, 2);
        assert_eq!(stats.task_failures, 0);
        assert_eq!(stats.retried_tasks, 0);
    }

    #[test]
    fn collector_times_every_task_attempt() {
        let docs = ["a b a", "b c", "a"];
        let mut cfg = JobConfig::with_workers(3);
        cfg.retry_backoff = Duration::from_micros(100);
        cfg.fault_plan = FaultPlan::none().with_fault(Stage::Map, 1, 0, FaultKind::Panic);
        let collector = std::sync::Arc::new(ngs_observe::Collector::new());
        cfg.collector = Some(collector.clone());
        let (_, stats) = word_count_stats(&cfg, &docs).expect("job must recover");
        let report = collector.report("mr");
        // 3 map tasks + 1 retried attempt; one attempt per reduce partition.
        assert_eq!(report.spans["mapreduce.task.map"].count, 4);
        assert_eq!(report.spans["mapreduce.task.reduce"].count, cfg.reduce_partitions as u64);
        // Live counters agree with the JobStats the caller gets back.
        assert_eq!(report.counters["mapreduce.task_failures"], stats.task_failures);
        assert_eq!(report.counters["mapreduce.task_retries"], stats.retried_tasks);
    }

    #[test]
    fn trace_records_every_task_attempt_under_its_stage() {
        use ngs_observe::{TraceEventKind, Tracer};
        let docs = ["a b a", "b c", "a"];
        let mut cfg = JobConfig::with_workers(3);
        cfg.reduce_partitions = 2;
        cfg.retry_backoff = Duration::from_micros(100);
        cfg.fault_plan = FaultPlan::none().with_fault(Stage::Map, 1, 0, FaultKind::Panic);
        let tracer = std::sync::Arc::new(Tracer::new());
        let collector = std::sync::Arc::new(ngs_observe::Collector::with_tracer(tracer.clone()));
        cfg.collector = Some(collector);
        word_count_stats(&cfg, &docs).expect("job must recover");

        let events = tracer.events();
        let begins: Vec<_> = events.iter().filter(|e| e.kind == TraceEventKind::Begin).collect();
        let by_name = |n: &str| begins.iter().filter(|e| e.name == n).collect::<Vec<_>>();
        let job = by_name("mapreduce.job");
        assert_eq!(job.len(), 1);
        for stage in ["mapreduce.stage.map", "mapreduce.stage.shuffle", "mapreduce.stage.reduce"] {
            let s = by_name(stage);
            assert_eq!(s.len(), 1, "{stage}");
            assert_eq!(s[0].parent, job[0].id, "{stage} parents under the job");
        }
        // 3 map tasks + 1 retried attempt, all siblings under the map stage.
        let map_stage_id = by_name("mapreduce.stage.map")[0].id;
        let map_tasks = by_name("mapreduce.task.map");
        assert_eq!(map_tasks.len(), 4);
        assert!(map_tasks.iter().all(|e| e.parent == map_stage_id));
        let task1: Vec<_> = map_tasks.iter().filter(|e| e.detail.starts_with("task=1")).collect();
        assert_eq!(task1.len(), 2, "failed attempt 0 and successful attempt 1");
        assert!(task1.iter().any(|e| e.detail == "task=1 attempt=0"));
        assert!(task1.iter().any(|e| e.detail == "task=1 attempt=1"));
        // One attempt per reduce partition under the reduce stage.
        let reduce_stage_id = by_name("mapreduce.stage.reduce")[0].id;
        let reduce_tasks = by_name("mapreduce.task.reduce");
        assert_eq!(reduce_tasks.len(), 2);
        assert!(reduce_tasks.iter().all(|e| e.parent == reduce_stage_id));
        // The injected failure left an instant marker.
        assert!(events.iter().any(|e| e.kind == TraceEventKind::Instant
            && e.name == "mapreduce.task.failed"
            && e.detail.contains("task=1 attempt=0")));
        // Begin/end balance (the panicked attempt included).
        let ends = events.iter().filter(|e| e.kind == TraceEventKind::End).count();
        assert_eq!(begins.len(), ends);
    }

    #[test]
    fn map_checkpoints_resume_and_skip_recompute() {
        let dir = std::env::temp_dir().join(format!("mrlite_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = JobConfig::with_workers(3);
        cfg.map_checkpoint_dir = Some(dir.clone());
        let docs = ["a b a", "b c", "a"];
        let (mut cold, s_cold) = word_count_stats(&cfg, &docs).expect("cold run");
        assert_eq!(s_cold.map_tasks_resumed, 0);
        // Second run of the same job: all three map tasks reload.
        let (mut warm, s_warm) = word_count_stats(&cfg, &docs).expect("warm run");
        assert_eq!(s_warm.map_tasks_resumed, 3);
        assert_eq!(s_warm.map_output_records, s_cold.map_output_records);
        cold.sort();
        warm.sort();
        assert_eq!(cold, warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_stale_map_checkpoint_is_recomputed() {
        let dir = std::env::temp_dir().join(format!("mrlite_ckpt_bad_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = JobConfig::with_workers(3);
        cfg.map_checkpoint_dir = Some(dir.clone());
        let docs = ["a b a", "b c", "a"];
        let (_, _) = word_count_stats(&cfg, &docs).expect("cold run");
        // Flip one byte of task 0's checkpoint: the whole-file checksum
        // must reject it and the task recomputes.
        let path = dir.join("map_t0.ckpt");
        let mut bytes = std::fs::read(&path).expect("checkpoint written");
        bytes[10] ^= 0x40;
        std::fs::write(&path, &bytes).expect("corrupt checkpoint");
        // Truncate task 1's checkpoint mid-file.
        let path1 = dir.join("map_t1.ckpt");
        let full = std::fs::read(&path1).expect("checkpoint written");
        std::fs::write(&path1, &full[..full.len() / 2]).expect("truncate checkpoint");
        let (mut warm, stats) = word_count_stats(&cfg, &docs).expect("warm run");
        assert_eq!(stats.map_tasks_resumed, 1, "only the intact checkpoint reloads");
        warm.sort();
        assert_eq!(warm, word_count(&JobConfig::with_workers(3), &docs));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn map_checkpoints_survive_a_failed_job_and_resume_it() {
        let dir = std::env::temp_dir().join(format!("mrlite_ckpt_fail_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let docs = ["a b a", "b c", "a"];
        let mut cfg = JobConfig::with_workers(3);
        cfg.map_checkpoint_dir = Some(dir.clone());
        cfg.max_attempts = 2;
        cfg.retry_backoff = Duration::from_micros(100);
        // Every reduce attempt of partition 0 fails: the job dies *after*
        // the map phase checkpointed its output.
        cfg.fault_plan = FaultPlan::none()
            .with_fault(Stage::Reduce, 0, 0, FaultKind::IoError)
            .with_fault(Stage::Reduce, 0, 1, FaultKind::IoError);
        word_count_stats(&cfg, &docs).expect_err("reduce must exhaust attempts");
        // The retry (same job, faults cleared) resumes every map task from
        // disk and produces the correct output.
        cfg.fault_plan = FaultPlan::none();
        let (mut out, stats) = word_count_stats(&cfg, &docs).expect("resumed run");
        assert_eq!(stats.map_tasks_resumed, 3);
        out.sort();
        assert_eq!(out, word_count(&JobConfig::with_workers(3), &docs));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_jitter_is_deterministic_bounded_and_desynchronized() {
        let base = Duration::from_millis(8);
        for attempt in 1..6u32 {
            let exp = base * (1u32 << (attempt - 1));
            for task in 0..32 {
                let d = backoff_with_jitter(base, attempt, Stage::Map, task);
                assert_eq!(d, backoff_with_jitter(base, attempt, Stage::Map, task));
                assert!(d >= exp.mul_f64(0.5) && d < exp, "{d:?} vs {exp:?}");
            }
        }
        // Coordinates actually spread the delays: tasks failing in the same
        // tick must not all sleep the same duration.
        let delays: std::collections::BTreeSet<Duration> =
            (0..16).map(|t| backoff_with_jitter(base, 1, Stage::Reduce, t)).collect();
        assert!(delays.len() > 8, "only {} distinct delays of 16", delays.len());
    }

    #[test]
    fn empty_input_is_fine() {
        let empty: Vec<&str> = Vec::new();
        let (out, stats) = map_reduce_simple(
            &JobConfig::with_workers(4),
            &empty,
            |_doc: &&str, _emit: &mut dyn FnMut(String, u64)| {},
            |k: &String, vs: Vec<u64>, emit| emit((k.clone(), vs.len() as u64)),
        )
        .expect("empty job");
        assert!(out.is_empty());
        assert_eq!(stats.map_input_records, 0);
    }

    #[test]
    fn injected_map_panic_is_retried() {
        let docs = ["a b a", "b c", "a"];
        let mut cfg = JobConfig::with_workers(3);
        cfg.retry_backoff = Duration::from_micros(100);
        cfg.fault_plan = FaultPlan::none().with_fault(Stage::Map, 1, 0, FaultKind::Panic);
        let (mut out, stats) = word_count_stats(&cfg, &docs).expect("job must recover");
        out.sort();
        assert_eq!(out, word_count(&JobConfig::with_workers(3), &docs));
        assert_eq!(stats.task_failures, 1);
        assert_eq!(stats.retried_tasks, 1);
    }

    #[test]
    fn exhausted_attempts_fail_the_job_without_panicking() {
        let docs = ["a b", "c d"];
        let mut cfg = JobConfig::with_workers(2);
        cfg.max_attempts = 3;
        cfg.retry_backoff = Duration::from_micros(100);
        cfg.fault_plan = FaultPlan::none()
            .with_fault(Stage::Map, 0, 0, FaultKind::Panic)
            .with_fault(Stage::Map, 0, 1, FaultKind::Panic)
            .with_fault(Stage::Map, 0, 2, FaultKind::Panic);
        let err = word_count_stats(&cfg, &docs).expect_err("job must fail");
        assert_eq!(err.stage, Stage::Map);
        assert_eq!(err.task, 0);
        assert_eq!(err.attempts, 3);
        assert!(err.last_error.contains("injected panic"), "{}", err.last_error);
    }

    #[test]
    fn injected_reduce_failure_is_retried() {
        let docs = ["a b a", "b c"];
        let mut cfg = JobConfig::with_workers(2);
        cfg.retry_backoff = Duration::from_micros(100);
        cfg.fault_plan = FaultPlan::none()
            .with_fault(Stage::Reduce, 0, 0, FaultKind::Panic)
            .with_fault(Stage::Reduce, 3, 0, FaultKind::IoError);
        let (mut out, stats) = word_count_stats(&cfg, &docs).expect("job must recover");
        out.sort();
        assert_eq!(out, word_count(&JobConfig::with_workers(2), &docs));
        assert_eq!(stats.task_failures, 2);
        assert_eq!(stats.retried_tasks, 2);
    }

    proptest! {
        #[test]
        fn equals_sequential_group_by(pairs in proptest::collection::vec((0u64..50, any::<u32>()), 0..300),
                                      workers in 1usize..6) {
            // Reference: BTreeMap group-by-key, summed.
            let mut expect: BTreeMap<u64, u64> = BTreeMap::new();
            for &(k, v) in &pairs {
                *expect.entry(k).or_insert(0) += v as u64;
            }
            let cfg = JobConfig::with_workers(workers);
            let (mut got, _) = map_reduce_simple(
                &cfg,
                &pairs,
                |&(k, v): &(u64, u32), emit| emit(k, v),
                |k: &u64, vs: Vec<u32>, emit| emit((*k, vs.iter().map(|&v| v as u64).sum::<u64>())),
            ).expect("job failed");
            got.sort();
            let expect: Vec<(u64, u64)> = expect.into_iter().collect();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn seeded_faults_never_change_results(seed in any::<u64>(), workers in 1usize..5) {
            let docs = ["the quick brown fox", "jumps over the lazy dog", "the end"];
            let mut faulty = JobConfig::with_workers(workers);
            faulty.retry_backoff = Duration::from_micros(50);
            faulty.fault_plan = FaultPlan::seeded(seed, 0.5);
            let clean_out = word_count(&JobConfig::with_workers(workers), &docs);
            let (mut out, _) = word_count_stats(&faulty, &docs).expect("seeded faults must recover");
            out.sort();
            prop_assert_eq!(out, clean_out);
        }
    }
}
