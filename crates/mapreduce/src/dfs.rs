//! HDFS-lite: a miniature block store.
//!
//! §1.3.1 describes the parts of HDFS that matter to the dataflow: "Every
//! file in HDFS is divided into physical blocks, distributed among
//! different nodes, termed DataNode. The metadata recording the block
//! locations for each file is stored in a NameNode … To tolerate node
//! failure, file blocks are duplicated in the system." This module models
//! exactly that structure on one machine: fixed-size blocks, round-robin
//! placement over simulated data nodes, a replication factor, and a
//! name-node table mapping file → block locations. It backs the spill path
//! in tests and lets the CLOSET driver report HDFS-style storage counters.

use std::collections::BTreeMap;

/// Block store configuration.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    /// Block size in bytes (Hadoop default 64 MB; tests use tiny blocks).
    pub block_size: usize,
    /// Copies kept of every block.
    pub replication: usize,
    /// Simulated data nodes.
    pub data_nodes: usize,
}

impl Default for DfsConfig {
    fn default() -> DfsConfig {
        DfsConfig { block_size: 64 << 20, replication: 2, data_nodes: 32 }
    }
}

/// Metadata for one stored block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMeta {
    /// Index of the block within its file.
    pub index: usize,
    /// Data nodes holding a replica.
    pub replicas: Vec<usize>,
    /// Payload length (≤ block size).
    pub len: usize,
}

/// An in-memory block store with HDFS-like placement.
pub struct BlockStore {
    cfg: DfsConfig,
    /// "NameNode": file name → block metadata.
    namenode: BTreeMap<String, Vec<BlockMeta>>,
    /// "DataNodes": per-node block payloads keyed by (file, index).
    datanodes: Vec<BTreeMap<(String, usize), Vec<u8>>>,
    next_node: usize,
}

impl BlockStore {
    /// Create an empty store.
    ///
    /// # Panics
    /// Panics when replication exceeds the node count or any dimension is 0.
    pub fn new(cfg: DfsConfig) -> BlockStore {
        assert!(cfg.block_size > 0 && cfg.data_nodes > 0 && cfg.replication > 0);
        assert!(cfg.replication <= cfg.data_nodes, "replication exceeds node count");
        let datanodes = (0..cfg.data_nodes).map(|_| BTreeMap::new()).collect();
        BlockStore { cfg, namenode: BTreeMap::new(), datanodes, next_node: 0 }
    }

    /// Store `data` under `name`, splitting into blocks and replicating.
    /// Overwrites any existing file of the same name.
    pub fn write(&mut self, name: &str, data: &[u8]) {
        self.delete(name);
        let mut metas = Vec::new();
        for (index, chunk) in data.chunks(self.cfg.block_size.max(1)).enumerate() {
            let mut replicas = Vec::with_capacity(self.cfg.replication);
            for r in 0..self.cfg.replication {
                let node = (self.next_node + r) % self.cfg.data_nodes;
                self.datanodes[node].insert((name.to_string(), index), chunk.to_vec());
                replicas.push(node);
            }
            self.next_node = (self.next_node + 1) % self.cfg.data_nodes;
            metas.push(BlockMeta { index, replicas, len: chunk.len() });
        }
        // Zero-length files still need a metadata entry.
        self.namenode.insert(name.to_string(), metas);
    }

    /// Read a file back, concatenating its blocks (first replica wins).
    /// `None` when the file is unknown or a block is unrecoverable.
    pub fn read(&self, name: &str) -> Option<Vec<u8>> {
        let metas = self.namenode.get(name)?;
        let mut out = Vec::new();
        for meta in metas {
            let mut found = false;
            for &node in &meta.replicas {
                if let Some(chunk) = self.datanodes[node].get(&(name.to_string(), meta.index)) {
                    out.extend_from_slice(chunk);
                    found = true;
                    break;
                }
            }
            if !found {
                return None;
            }
        }
        Some(out)
    }

    /// Remove a file and its blocks.
    pub fn delete(&mut self, name: &str) {
        if let Some(metas) = self.namenode.remove(name) {
            for meta in metas {
                for &node in &meta.replicas {
                    self.datanodes[node].remove(&(name.to_string(), meta.index));
                }
            }
        }
    }

    /// Simulate a data-node failure: all its blocks vanish. Files remain
    /// readable while every block retains at least one live replica.
    pub fn fail_node(&mut self, node: usize) {
        if let Some(n) = self.datanodes.get_mut(node) {
            n.clear();
        }
    }

    /// Number of stored files.
    pub fn file_count(&self) -> usize {
        self.namenode.len()
    }

    /// Total bytes held across all data nodes (including replication).
    pub fn stored_bytes(&self) -> u64 {
        self.datanodes
            .iter()
            .map(|n| n.values().map(|v| v.len() as u64).sum::<u64>())
            .sum()
    }

    /// Block metadata for a file.
    pub fn blocks_of(&self, name: &str) -> Option<&[BlockMeta]> {
        self.namenode.get(name).map(|v| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_store(replication: usize) -> BlockStore {
        BlockStore::new(DfsConfig { block_size: 8, replication, data_nodes: 4 })
    }

    #[test]
    fn write_read_round_trip() {
        let mut s = tiny_store(2);
        let data: Vec<u8> = (0..37).collect();
        s.write("f", &data);
        assert_eq!(s.read("f"), Some(data));
        assert_eq!(s.blocks_of("f").unwrap().len(), 5); // ceil(37/8)
    }

    #[test]
    fn replication_doubles_storage() {
        let mut s = tiny_store(2);
        s.write("f", &[0u8; 32]);
        assert_eq!(s.stored_bytes(), 64);
    }

    #[test]
    fn survives_single_node_failure() {
        let mut s = tiny_store(2);
        let data: Vec<u8> = (0..64).map(|i| i as u8).collect();
        s.write("f", &data);
        s.fail_node(0);
        assert_eq!(s.read("f"), Some(data));
    }

    #[test]
    fn unreplicated_store_loses_data_on_failure() {
        let mut s = tiny_store(1);
        s.write("f", &[1u8; 32]);
        // Some block lives on node 0 with replication 1; failing enough
        // nodes must eventually lose the file.
        for node in 0..4 {
            s.fail_node(node);
        }
        assert_eq!(s.read("f"), None);
    }

    #[test]
    fn delete_frees_space() {
        let mut s = tiny_store(2);
        s.write("f", &[0u8; 32]);
        s.delete("f");
        assert_eq!(s.stored_bytes(), 0);
        assert_eq!(s.read("f"), None);
        assert_eq!(s.file_count(), 0);
    }

    #[test]
    fn overwrite_replaces_content() {
        let mut s = tiny_store(2);
        s.write("f", b"first content here");
        s.write("f", b"second");
        assert_eq!(s.read("f"), Some(b"second".to_vec()));
        assert_eq!(s.file_count(), 1);
    }

    #[test]
    fn empty_file_supported() {
        let mut s = tiny_store(2);
        s.write("empty", b"");
        assert_eq!(s.read("empty"), Some(Vec::new()));
        assert_eq!(s.file_count(), 1);
    }

    #[test]
    #[should_panic(expected = "replication exceeds node count")]
    fn over_replication_rejected() {
        BlockStore::new(DfsConfig { block_size: 8, replication: 9, data_nodes: 4 });
    }
}
