//! HDFS-lite: a miniature block store.
//!
//! §1.3.1 describes the parts of HDFS that matter to the dataflow: "Every
//! file in HDFS is divided into physical blocks, distributed among
//! different nodes, termed DataNode. The metadata recording the block
//! locations for each file is stored in a NameNode … To tolerate node
//! failure, file blocks are duplicated in the system." This module models
//! that structure on one machine — fixed-size blocks, round-robin
//! placement over simulated data nodes, a replication factor, and a
//! name-node table mapping file → block locations — including the repair
//! half of the contract:
//!
//! * every block carries a checksum, verified on [`BlockStore::read`]
//!   (a corrupt replica is skipped, not returned);
//! * [`BlockStore::fail_node`] marks a node dead; [`BlockStore::re_replicate`]
//!   then copies under-replicated blocks from surviving replicas onto
//!   live nodes, restoring the replication factor — HDFS's NameNode
//!   re-replication on DataNode loss;
//! * [`BlockStore::scrub`] sweeps all replicas against their checksums
//!   and drops corrupt copies, the analogue of the HDFS block scanner.
//!
//! It backs the spill path in tests and lets the CLOSET driver report
//! HDFS-style storage and recovery counters.

use crate::codec::checksum;
use std::collections::BTreeMap;

/// Block store configuration.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    /// Block size in bytes (Hadoop default 64 MB; tests use tiny blocks).
    pub block_size: usize,
    /// Copies kept of every block.
    pub replication: usize,
    /// Simulated data nodes.
    pub data_nodes: usize,
}

impl Default for DfsConfig {
    fn default() -> DfsConfig {
        DfsConfig { block_size: 64 << 20, replication: 2, data_nodes: 32 }
    }
}

/// Metadata for one stored block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMeta {
    /// Index of the block within its file.
    pub index: usize,
    /// Data nodes holding a replica.
    pub replicas: Vec<usize>,
    /// Payload length (≤ block size).
    pub len: usize,
    /// FNV-1a checksum of the payload, fixed at write time.
    pub checksum: u64,
}

/// An in-memory block store with HDFS-like placement and repair.
pub struct BlockStore {
    cfg: DfsConfig,
    /// "NameNode": file name → block metadata.
    namenode: BTreeMap<String, Vec<BlockMeta>>,
    /// "DataNodes": per-node block payloads keyed by (file, index).
    datanodes: Vec<BTreeMap<(String, usize), Vec<u8>>>,
    /// Liveness per node; dead nodes receive no new replicas.
    alive: Vec<bool>,
    next_node: usize,
    re_replicated_total: u64,
}

impl BlockStore {
    /// Create an empty store.
    ///
    /// # Panics
    /// Panics when replication exceeds the node count or any dimension is 0.
    pub fn new(cfg: DfsConfig) -> BlockStore {
        assert!(cfg.block_size > 0 && cfg.data_nodes > 0 && cfg.replication > 0);
        assert!(cfg.replication <= cfg.data_nodes, "replication exceeds node count");
        let datanodes = (0..cfg.data_nodes).map(|_| BTreeMap::new()).collect();
        let alive = vec![true; cfg.data_nodes];
        BlockStore {
            cfg,
            namenode: BTreeMap::new(),
            datanodes,
            alive,
            next_node: 0,
            re_replicated_total: 0,
        }
    }

    /// Live data nodes, in index order.
    fn live_nodes(&self) -> Vec<usize> {
        (0..self.cfg.data_nodes).filter(|&n| self.alive[n]).collect()
    }

    /// Store `data` under `name`, splitting into blocks and replicating
    /// across live nodes. Overwrites any existing file of the same name.
    ///
    /// Returns the replication actually achieved per block: the configured
    /// factor when enough live nodes remain, otherwise the live-node count
    /// (0 when every node is dead — the metadata is recorded but the
    /// payload is lost). A degraded write is never silent: the deficit is
    /// visible through [`BlockStore::under_replicated`] and repairable by
    /// [`BlockStore::re_replicate`] once spare live nodes exist, mirroring
    /// how HDFS accepts writes below the target factor and lets the
    /// NameNode heal them later.
    #[must_use = "fewer live nodes than the replication factor degrade the write; check the achieved replication"]
    pub fn write(&mut self, name: &str, data: &[u8]) -> usize {
        self.delete(name);
        let live = self.live_nodes();
        let achieved = self.cfg.replication.min(live.len());
        let mut metas = Vec::new();
        for (index, chunk) in data.chunks(self.cfg.block_size.max(1)).enumerate() {
            let mut replicas = Vec::with_capacity(achieved);
            for r in 0..achieved {
                let node = live[(self.next_node + r) % live.len()];
                self.datanodes[node].insert((name.to_string(), index), chunk.to_vec());
                replicas.push(node);
            }
            self.next_node = (self.next_node + 1) % live.len().max(1);
            metas.push(BlockMeta { index, replicas, len: chunk.len(), checksum: checksum(chunk) });
        }
        // Zero-length files still need a metadata entry.
        self.namenode.insert(name.to_string(), metas);
        achieved
    }

    /// Read a file back, concatenating its blocks. Each block comes from
    /// the first replica whose payload exists *and* matches the block
    /// checksum. A checksum mismatch is not just skipped: the corrupt
    /// replica is dropped on the spot and, once the read completes, the
    /// damaged blocks are re-replicated from their surviving intact copies
    /// (scrub-on-read — HDFS reports a corrupt replica to the NameNode
    /// when a client read trips over it, rather than waiting for the next
    /// scanner sweep). Healed blocks show up in
    /// [`BlockStore::re_replicated_blocks`]. `None` when the file is
    /// unknown or some block has no intact replica left — corrupt copies
    /// of such blocks are still dropped, so the damage is visible to
    /// [`BlockStore::under_replicated`] instead of lingering as garbage.
    pub fn read(&mut self, name: &str) -> Option<Vec<u8>> {
        let metas = self.namenode.get_mut(name)?;
        let mut out = Some(Vec::new());
        let mut scrubbed = false;
        for meta in metas {
            let key = (name.to_string(), meta.index);
            let mut chunk = None;
            let datanodes = &mut self.datanodes;
            meta.replicas.retain(|&node| {
                if chunk.is_some() {
                    return true; // already served; leave the tail unverified
                }
                match datanodes[node].get(&key) {
                    Some(payload) if checksum(payload) == meta.checksum => {
                        chunk = Some(payload.clone());
                        true
                    }
                    Some(_) => {
                        // Verified corrupt: drop the copy now so repair can
                        // see the deficit.
                        datanodes[node].remove(&key);
                        scrubbed = true;
                        false
                    }
                    None => false, // lost with its node; nothing to drop
                }
            });
            match (chunk, &mut out) {
                (Some(chunk), Some(out)) => out.extend_from_slice(&chunk),
                // Keep scanning the remaining blocks even after the read
                // has failed: their corrupt replicas should be dropped too.
                _ => out = None,
            }
        }
        if scrubbed {
            self.re_replicate();
        }
        out
    }

    /// Remove a file and its blocks.
    pub fn delete(&mut self, name: &str) {
        if let Some(metas) = self.namenode.remove(name) {
            for meta in metas {
                for &node in &meta.replicas {
                    self.datanodes[node].remove(&(name.to_string(), meta.index));
                }
            }
        }
    }

    /// Simulate a data-node failure: the node is marked dead and all its
    /// blocks vanish. Files remain readable while every block retains at
    /// least one live replica; call [`BlockStore::re_replicate`] to
    /// restore full redundancy before the next failure.
    pub fn fail_node(&mut self, node: usize) {
        if let Some(n) = self.datanodes.get_mut(node) {
            n.clear();
            self.alive[node] = false;
        }
    }

    /// Blocks currently holding fewer intact replicas than the
    /// replication factor.
    pub fn under_replicated(&self) -> usize {
        self.namenode
            .iter()
            .flat_map(|(name, metas)| metas.iter().map(move |m| (name, m)))
            .filter(|(name, meta)| {
                let intact = meta
                    .replicas
                    .iter()
                    .filter(|&&node| {
                        self.alive[node]
                            && self.datanodes[node]
                                .get(&(name.to_string(), meta.index))
                                .is_some_and(|p| checksum(p) == meta.checksum)
                    })
                    .count();
                intact < self.cfg.replication
            })
            .count()
    }

    /// Restore full replication after node failures or scrubbed
    /// corruption: for every under-replicated block with at least one
    /// intact replica, copy the payload onto live nodes that lack it.
    /// Returns the number of blocks repaired; blocks with no intact
    /// replica are unrecoverable and left as-is.
    pub fn re_replicate(&mut self) -> usize {
        let mut repaired = 0;
        let replication = self.cfg.replication;
        let live: Vec<usize> = (0..self.cfg.data_nodes).filter(|&n| self.alive[n]).collect();
        for (name, metas) in self.namenode.iter_mut() {
            for meta in metas.iter_mut() {
                let key = (name.clone(), meta.index);
                // Keep only replicas that are live, present, and intact.
                let datanodes = &self.datanodes;
                meta.replicas.retain(|&node| {
                    self.alive[node]
                        && datanodes[node].get(&key).is_some_and(|p| checksum(p) == meta.checksum)
                });
                if meta.replicas.len() >= replication {
                    continue;
                }
                let Some(&source) = meta.replicas.first() else {
                    continue; // no intact copy survives: data lost
                };
                let payload = self.datanodes[source][&key].clone();
                let before = meta.replicas.len();
                for &node in &live {
                    if meta.replicas.len() >= replication {
                        break;
                    }
                    if meta.replicas.contains(&node) {
                        continue;
                    }
                    self.datanodes[node].insert(key.clone(), payload.clone());
                    meta.replicas.push(node);
                }
                // Only count blocks that actually gained a replica; with no
                // spare live node there is nothing to repair onto.
                if meta.replicas.len() > before {
                    repaired += 1;
                    self.re_replicated_total += 1;
                }
            }
        }
        repaired
    }

    /// Verify every stored replica against its block checksum, dropping
    /// corrupt copies (the HDFS block scanner). Returns the number of
    /// replicas dropped; follow with [`BlockStore::re_replicate`] to
    /// restore redundancy from the surviving copies.
    pub fn scrub(&mut self) -> usize {
        let mut dropped = 0;
        for (name, metas) in self.namenode.iter_mut() {
            for meta in metas.iter_mut() {
                let key = (name.clone(), meta.index);
                let datanodes = &mut self.datanodes;
                meta.replicas.retain(|&node| {
                    let intact =
                        datanodes[node].get(&key).is_some_and(|p| checksum(p) == meta.checksum);
                    if !intact {
                        datanodes[node].remove(&key);
                        dropped += 1;
                    }
                    intact
                });
            }
        }
        dropped
    }

    /// Deliberately corrupt one replica's payload (test instrumentation
    /// for the scrub/read verification paths). Returns `false` when the
    /// replica does not exist.
    pub fn corrupt_replica(&mut self, name: &str, index: usize, node: usize) -> bool {
        match self.datanodes.get_mut(node).and_then(|n| n.get_mut(&(name.to_string(), index))) {
            Some(payload) => {
                if payload.is_empty() {
                    payload.push(0xFF);
                } else {
                    payload[0] ^= 0xFF;
                }
                true
            }
            None => false,
        }
    }

    /// Number of stored files.
    pub fn file_count(&self) -> usize {
        self.namenode.len()
    }

    /// Total bytes held across all data nodes (including replication).
    pub fn stored_bytes(&self) -> u64 {
        self.datanodes.iter().map(|n| n.values().map(|v| v.len() as u64).sum::<u64>()).sum()
    }

    /// Blocks restored to full replication over this store's lifetime
    /// (for [`crate::JobStats::re_replicated_blocks`]).
    pub fn re_replicated_blocks(&self) -> u64 {
        self.re_replicated_total
    }

    /// Block metadata for a file.
    pub fn blocks_of(&self, name: &str) -> Option<&[BlockMeta]> {
        self.namenode.get(name).map(|v| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_store(replication: usize) -> BlockStore {
        BlockStore::new(DfsConfig { block_size: 8, replication, data_nodes: 4 })
    }

    #[test]
    fn write_read_round_trip() {
        let mut s = tiny_store(2);
        let data: Vec<u8> = (0..37).collect();
        assert_eq!(s.write("f", &data), 2);
        assert_eq!(s.read("f"), Some(data));
        assert_eq!(s.blocks_of("f").unwrap().len(), 5); // ceil(37/8)
    }

    #[test]
    fn replication_doubles_storage() {
        let mut s = tiny_store(2);
        assert_eq!(s.write("f", &[0u8; 32]), 2);
        assert_eq!(s.stored_bytes(), 64);
    }

    #[test]
    fn survives_single_node_failure() {
        let mut s = tiny_store(2);
        let data: Vec<u8> = (0..64).map(|i| i as u8).collect();
        assert_eq!(s.write("f", &data), 2);
        s.fail_node(0);
        assert_eq!(s.read("f"), Some(data));
    }

    #[test]
    fn unreplicated_store_loses_data_on_failure() {
        let mut s = tiny_store(1);
        assert_eq!(s.write("f", &[1u8; 32]), 1);
        // Some block lives on node 0 with replication 1; failing enough
        // nodes must eventually lose the file.
        for node in 0..4 {
            s.fail_node(node);
        }
        assert_eq!(s.read("f"), None);
    }

    #[test]
    fn delete_frees_space() {
        let mut s = tiny_store(2);
        assert_eq!(s.write("f", &[0u8; 32]), 2);
        s.delete("f");
        assert_eq!(s.stored_bytes(), 0);
        assert_eq!(s.read("f"), None);
        assert_eq!(s.file_count(), 0);
    }

    #[test]
    fn overwrite_replaces_content() {
        let mut s = tiny_store(2);
        assert_eq!(s.write("f", b"first content here"), 2);
        assert_eq!(s.write("f", b"second"), 2);
        assert_eq!(s.read("f"), Some(b"second".to_vec()));
        assert_eq!(s.file_count(), 1);
    }

    #[test]
    fn empty_file_supported() {
        let mut s = tiny_store(2);
        assert_eq!(s.write("empty", b""), 2);
        assert_eq!(s.read("empty"), Some(Vec::new()));
        assert_eq!(s.file_count(), 1);
    }

    #[test]
    #[should_panic(expected = "replication exceeds node count")]
    fn over_replication_rejected() {
        BlockStore::new(DfsConfig { block_size: 8, replication: 9, data_nodes: 4 });
    }

    #[test]
    fn re_replication_survives_second_failure() {
        let mut s = tiny_store(2);
        let data: Vec<u8> = (0..64).map(|i| i as u8).collect();
        assert_eq!(s.write("f", &data), 2);
        // First failure: still readable, but under-replicated.
        s.fail_node(0);
        assert!(s.under_replicated() > 0);
        let repaired = s.re_replicate();
        assert!(repaired > 0);
        assert_eq!(s.under_replicated(), 0);
        assert_eq!(s.re_replicated_blocks(), repaired as u64);
        // Second failure: every block still has an intact live replica.
        s.fail_node(1);
        assert_eq!(s.read("f"), Some(data));
    }

    #[test]
    fn without_re_replication_two_failures_can_lose_data() {
        // Control for the test above: replicas land on consecutive nodes,
        // so failing both copies of some block loses the file.
        let mut s = tiny_store(2);
        assert_eq!(s.write("f", &[7u8; 32]), 2);
        s.fail_node(0);
        s.fail_node(1);
        let lost = s.read("f").is_none();
        let under = s.under_replicated();
        assert!(lost || under > 0, "two failures must leave damage without repair");
    }

    #[test]
    fn read_skips_corrupt_replica() {
        let mut s = tiny_store(2);
        let data: Vec<u8> = (100..164).collect();
        assert_eq!(s.write("f", &data), 2);
        let node = s.blocks_of("f").unwrap()[0].replicas[0];
        assert!(s.corrupt_replica("f", 0, node));
        // First replica is corrupt; the checksum check falls through to
        // the intact copy.
        assert_eq!(s.read("f"), Some(data));
    }

    #[test]
    fn read_scrubs_corrupt_replica_and_heals_in_place() {
        let mut s = tiny_store(2);
        let data: Vec<u8> = (0..40).collect();
        assert_eq!(s.write("f", &data), 2);
        let node = s.blocks_of("f").unwrap()[2].replicas[0];
        assert!(s.corrupt_replica("f", 2, node));
        // The read serves intact bytes AND repairs as a side effect: the
        // corrupt copy is dropped and the block re-replicated from the
        // surviving replica, without an explicit scrub() sweep.
        assert_eq!(s.read("f"), Some(data.clone()));
        assert_eq!(s.re_replicated_blocks(), 1);
        assert_eq!(s.under_replicated(), 0);
        assert_eq!(s.blocks_of("f").unwrap()[2].replicas.len(), 2);
        // Every surviving replica of the healed block passes its checksum.
        for &n in &s.blocks_of("f").unwrap()[2].replicas.clone() {
            let payload = s.datanodes[n][&("f".to_string(), 2)].clone();
            assert_eq!(checksum(&payload), s.blocks_of("f").unwrap()[2].checksum);
        }
        // A second read needs no further repair.
        assert_eq!(s.read("f"), Some(data));
        assert_eq!(s.re_replicated_blocks(), 1);
    }

    #[test]
    fn read_with_no_intact_replica_drops_garbage_and_reports_loss() {
        let mut s = tiny_store(2);
        assert_eq!(s.write("f", &[9u8; 20]), 2);
        let replicas = s.blocks_of("f").unwrap()[0].replicas.clone();
        for node in replicas {
            assert!(s.corrupt_replica("f", 0, node));
        }
        // Both copies corrupt: the read fails rather than returning
        // garbage, and the verified-corrupt copies are gone.
        assert_eq!(s.read("f"), None);
        assert!(s.blocks_of("f").unwrap()[0].replicas.is_empty());
        assert!(s.under_replicated() > 0);
    }

    #[test]
    fn scrub_drops_corrupt_copies_and_re_replication_heals() {
        let mut s = tiny_store(2);
        assert_eq!(s.write("f", &[3u8; 40]), 2);
        let node = s.blocks_of("f").unwrap()[1].replicas[1];
        assert!(s.corrupt_replica("f", 1, node));
        assert_eq!(s.scrub(), 1);
        assert_eq!(s.under_replicated(), 1);
        assert_eq!(s.re_replicate(), 1);
        assert_eq!(s.under_replicated(), 0);
        assert_eq!(s.read("f"), Some(vec![3u8; 40]));
    }

    #[test]
    fn degraded_write_returns_achieved_replication() {
        let mut s = tiny_store(3);
        s.fail_node(0);
        s.fail_node(1);
        // Two live nodes remain for a replication factor of 3: the write
        // degrades instead of panicking and reports what it achieved.
        assert_eq!(s.write("f", &[5u8; 16]), 2);
        assert_eq!(s.read("f"), Some(vec![5u8; 16]));
        // The deficit is visible, not hidden: both blocks under-replicated.
        assert_eq!(s.under_replicated(), 2);
        // With no spare live node, repair places nothing and says so.
        assert_eq!(s.re_replicate(), 0);
        assert_eq!(s.re_replicated_blocks(), 0);
        assert_eq!(s.under_replicated(), 2);
        // All nodes dead: zero replicas achieved; the read reports the
        // loss instead of returning garbage.
        s.fail_node(2);
        s.fail_node(3);
        assert_eq!(s.write("g", &[1u8; 8]), 0);
        assert_eq!(s.read("g"), None);
    }

    #[test]
    fn re_replication_avoids_dead_nodes() {
        let mut s = tiny_store(2);
        assert_eq!(s.write("f", &[9u8; 16]), 2);
        s.fail_node(0);
        s.re_replicate();
        for meta in s.blocks_of("f").unwrap() {
            assert!(!meta.replicas.contains(&0), "replica placed on dead node");
            assert_eq!(meta.replicas.len(), 2);
        }
    }
}
