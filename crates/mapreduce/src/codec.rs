//! Length-prefixed binary encoding for shuffle spill.
//!
//! Deliberately minimal: fixed-width little-endian integers, length-prefixed
//! byte strings, and tuples — enough to round-trip every key/value type the
//! CLOSET tasks shuffle, without pulling a serialization framework into the
//! dependency set.

use bytes::{Buf, BufMut};

/// A type that can round-trip through the spill format.
pub trait Codec: Sized {
    /// Append the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value from the front of `inp`, advancing it. `None` on
    /// malformed or truncated input.
    fn decode(inp: &mut &[u8]) -> Option<Self>;
}

macro_rules! impl_codec_int {
    ($($t:ty => $get:ident / $put:ident),* $(,)?) => {
        $(impl Codec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.$put(*self);
            }
            fn decode(inp: &mut &[u8]) -> Option<Self> {
                if inp.len() < std::mem::size_of::<$t>() {
                    return None;
                }
                Some(inp.$get())
            }
        })*
    };
}

impl_codec_int! {
    u8 => get_u8 / put_u8,
    u16 => get_u16_le / put_u16_le,
    u32 => get_u32_le / put_u32_le,
    u64 => get_u64_le / put_u64_le,
    i64 => get_i64_le / put_i64_le,
    f64 => get_f64_le / put_f64_le,
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.put_u8(u8::from(*self));
    }

    fn decode(inp: &mut &[u8]) -> Option<Self> {
        u8::decode(inp).map(|v| v != 0)
    }
}

impl Codec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        out.put_u64_le(*self as u64);
    }

    fn decode(inp: &mut &[u8]) -> Option<Self> {
        u64::decode(inp).map(|v| v as usize)
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_bytes().to_vec().encode(out);
    }

    fn decode(inp: &mut &[u8]) -> Option<Self> {
        String::from_utf8(Vec::<u8>::decode(inp)?).ok()
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(inp: &mut &[u8]) -> Option<Self> {
        Some((A::decode(inp)?, B::decode(inp)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }

    fn decode(inp: &mut &[u8]) -> Option<Self> {
        Some((A::decode(inp)?, B::decode(inp)?, C::decode(inp)?))
    }
}

impl<T: Codec> Codec for Vec<T>
where
    T: 'static,
{
    fn encode(&self, out: &mut Vec<u8>) {
        out.put_u32_le(self.len() as u32);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(inp: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(inp)? as usize;
        let mut v = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            v.push(T::decode(inp)?);
        }
        Some(v)
    }
}

/// Encode a whole slice of records into one buffer.
pub fn encode_all<T: Codec>(items: &[T]) -> Vec<u8> {
    let mut out = Vec::new();
    (items.len() as u64).encode(&mut out);
    for item in items {
        item.encode(&mut out);
    }
    out
}

/// Decode a buffer produced by [`encode_all`].
pub fn decode_all<T: Codec>(mut inp: &[u8]) -> Option<Vec<T>> {
    let n = u64::decode(&mut inp)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(T::decode(&mut inp)?);
    }
    if inp.is_empty() {
        Some(out)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut slice = buf.as_slice();
        let back = T::decode(&mut slice).expect("decode");
        assert_eq!(back, v);
        assert!(slice.is_empty(), "trailing bytes after decode");
    }

    #[test]
    fn scalar_round_trips() {
        round_trip(0u8);
        round_trip(42u32);
        round_trip(u64::MAX);
        round_trip(-7i64);
        round_trip(3.25f64);
        round_trip(true);
        round_trip(12345usize);
    }

    #[test]
    fn compound_round_trips() {
        round_trip((1u64, 2u32));
        round_trip((1u64, "hello".to_string(), vec![1u8, 2, 3]));
        round_trip(vec![(1u32, 2u32), (3, 4)]);
        round_trip(String::from("κλειδί"));
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let mut buf = Vec::new();
        (7u64, 9u64).encode(&mut buf);
        let mut short = &buf[..buf.len() - 1];
        assert!(<(u64, u64)>::decode(&mut short).is_none());
    }

    #[test]
    fn encode_all_round_trips() {
        let items: Vec<(u64, u32)> = (0..100).map(|i| (i, (i * 3) as u32)).collect();
        let buf = encode_all(&items);
        assert_eq!(decode_all::<(u64, u32)>(&buf).unwrap(), items);
    }

    #[test]
    fn decode_all_rejects_garbage_tail() {
        let mut buf = encode_all(&[1u64, 2, 3]);
        buf.push(0xFF);
        assert!(decode_all::<u64>(&buf).is_none());
    }

    proptest! {
        #[test]
        fn arbitrary_tuples_round_trip(a in any::<u64>(), s in ".{0,40}", bytes in proptest::collection::vec(any::<u8>(), 0..60)) {
            round_trip((a, s.to_string(), bytes));
        }
    }
}
