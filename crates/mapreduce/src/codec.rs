//! Length-prefixed binary encoding for shuffle spill.
//!
//! Deliberately minimal: fixed-width little-endian integers, length-prefixed
//! byte strings, and tuples — enough to round-trip every key/value type the
//! CLOSET tasks shuffle, without pulling a serialization framework into the
//! dependency set.
//!
//! Spill files are written as a sequence of *checksummed frames*
//! ([`encode_frames`] / [`decode_frames`]): each frame carries a payload
//! length, an FNV-1a checksum of the payload, and up to
//! [`FRAME_RECORDS`] encoded records. A mismatching checksum surfaces as
//! [`FrameError::ChecksumMismatch`] so the job layer can re-run the map
//! task that produced the frame instead of consuming corrupt data.

/// A type that can round-trip through the spill format.
pub trait Codec: Sized {
    /// Append the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value from the front of `inp`, advancing it. `None` on
    /// malformed or truncated input.
    fn decode(inp: &mut &[u8]) -> Option<Self>;

    /// Duplicate `self` using the codec as the copying mechanism.
    ///
    /// This exists so the reduce phase can hand each group an owned
    /// `Vec<V>` without putting a `V: Clone` bound on the public
    /// `map_reduce` API (every shuffled value is already `Codec`, so the
    /// bound would be pure noise for callers). The default round-trips
    /// through the encoder; every codec impl in this module overrides it
    /// with a direct clone, so in practice no encode/decode happens.
    fn clone_via_codec(&self) -> Self {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        let mut slice = buf.as_slice();
        Self::decode(&mut slice).expect("clone_via_codec: encode must be decodable")
    }
}

macro_rules! impl_codec_scalar {
    ($($t:ty),* $(,)?) => {
        $(impl Codec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(inp: &mut &[u8]) -> Option<Self> {
                const N: usize = std::mem::size_of::<$t>();
                let (head, rest) = inp.split_first_chunk::<N>()?;
                *inp = rest;
                Some(<$t>::from_le_bytes(*head))
            }
            fn clone_via_codec(&self) -> Self {
                *self
            }
        })*
    };
}

impl_codec_scalar!(u8, u16, u32, u64, i64, f64);

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(inp: &mut &[u8]) -> Option<Self> {
        u8::decode(inp).map(|v| v != 0)
    }

    fn clone_via_codec(&self) -> Self {
        *self
    }
}

impl Codec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }

    fn decode(inp: &mut &[u8]) -> Option<Self> {
        u64::decode(inp).map(|v| v as usize)
    }

    fn clone_via_codec(&self) -> Self {
        *self
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(inp: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(inp)? as usize;
        if inp.len() < len {
            return None;
        }
        let (head, rest) = inp.split_at(len);
        *inp = rest;
        String::from_utf8(head.to_vec()).ok()
    }

    fn clone_via_codec(&self) -> Self {
        self.clone()
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(inp: &mut &[u8]) -> Option<Self> {
        Some((A::decode(inp)?, B::decode(inp)?))
    }

    fn clone_via_codec(&self) -> Self {
        (self.0.clone_via_codec(), self.1.clone_via_codec())
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }

    fn decode(inp: &mut &[u8]) -> Option<Self> {
        Some((A::decode(inp)?, B::decode(inp)?, C::decode(inp)?))
    }

    fn clone_via_codec(&self) -> Self {
        (self.0.clone_via_codec(), self.1.clone_via_codec(), self.2.clone_via_codec())
    }
}

impl<T: Codec> Codec for Vec<T>
where
    T: 'static,
{
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(inp: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(inp)? as usize;
        let mut v = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            v.push(T::decode(inp)?);
        }
        Some(v)
    }

    fn clone_via_codec(&self) -> Self {
        self.iter().map(Codec::clone_via_codec).collect()
    }
}

/// Encode a whole slice of records into one buffer.
pub fn encode_all<T: Codec>(items: &[T]) -> Vec<u8> {
    let mut out = Vec::new();
    (items.len() as u64).encode(&mut out);
    for item in items {
        item.encode(&mut out);
    }
    out
}

/// Decode a buffer produced by [`encode_all`].
pub fn decode_all<T: Codec>(mut inp: &[u8]) -> Option<Vec<T>> {
    let n = u64::decode(&mut inp)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(T::decode(&mut inp)?);
    }
    if inp.is_empty() {
        Some(out)
    } else {
        None
    }
}

/// Records per spill frame: small enough that one flipped bit only
/// invalidates a bounded span, large enough that framing overhead
/// (16 bytes per frame) is negligible.
pub const FRAME_RECORDS: usize = 4096;

/// FNV-1a over `data` — the frame checksum.
pub fn checksum(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Why a spill frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The payload hash does not match the stored checksum.
    ChecksumMismatch,
    /// Truncated or structurally invalid frame data.
    Malformed,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FrameError::ChecksumMismatch => "spill frame checksum mismatch",
            FrameError::Malformed => "malformed spill frame",
        })
    }
}

impl std::error::Error for FrameError {}

/// Encode `items` as a sequence of checksummed frames:
/// `[payload_len u64][fnv1a(payload) u64][payload]`, repeated, where each
/// payload is [`encode_all`] over at most [`FRAME_RECORDS`] records.
pub fn encode_frames<T: Codec>(items: &[T]) -> Vec<u8> {
    let mut out = Vec::new();
    // Emit at least one frame so files for empty partitions are
    // distinguishable from truncated-to-nothing files.
    let mut chunks = items.chunks(FRAME_RECORDS);
    let first: &[T] = chunks.next().unwrap_or(&[]);
    for chunk in std::iter::once(first).chain(chunks) {
        let payload = encode_all(chunk);
        (payload.len() as u64).encode(&mut out);
        checksum(&payload).encode(&mut out);
        out.extend_from_slice(&payload);
    }
    out
}

/// Decode a buffer produced by [`encode_frames`], verifying every frame
/// checksum before trusting its payload.
pub fn decode_frames<T: Codec>(mut inp: &[u8]) -> Result<Vec<T>, FrameError> {
    let mut out = Vec::new();
    if inp.is_empty() {
        return Err(FrameError::Malformed);
    }
    while !inp.is_empty() {
        let len = u64::decode(&mut inp).ok_or(FrameError::Malformed)? as usize;
        let expected = u64::decode(&mut inp).ok_or(FrameError::Malformed)?;
        if inp.len() < len {
            return Err(FrameError::Malformed);
        }
        let (payload, rest) = inp.split_at(len);
        inp = rest;
        if checksum(payload) != expected {
            return Err(FrameError::ChecksumMismatch);
        }
        out.extend(decode_all::<T>(payload).ok_or(FrameError::Malformed)?);
    }
    Ok(out)
}

/// Verify the structural integrity and checksums of a frame sequence
/// without decoding the records — the frame layout is type-free, so a
/// driver can vet bytes produced by a worker before handing them to a
/// typed consumer. Returns the number of frames on success.
pub fn verify_frames(mut inp: &[u8]) -> Result<usize, FrameError> {
    if inp.is_empty() {
        return Err(FrameError::Malformed);
    }
    let mut frames = 0usize;
    while !inp.is_empty() {
        let len = u64::decode(&mut inp).ok_or(FrameError::Malformed)? as usize;
        let expected = u64::decode(&mut inp).ok_or(FrameError::Malformed)?;
        if inp.len() < len {
            return Err(FrameError::Malformed);
        }
        let (payload, rest) = inp.split_at(len);
        inp = rest;
        if checksum(payload) != expected {
            return Err(FrameError::ChecksumMismatch);
        }
        frames += 1;
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut slice = buf.as_slice();
        let back = T::decode(&mut slice).expect("decode");
        assert_eq!(back, v);
        assert!(slice.is_empty(), "trailing bytes after decode");
    }

    #[test]
    fn scalar_round_trips() {
        round_trip(0u8);
        round_trip(42u32);
        round_trip(u64::MAX);
        round_trip(-7i64);
        round_trip(3.25f64);
        round_trip(true);
        round_trip(12345usize);
    }

    #[test]
    fn compound_round_trips() {
        round_trip((1u64, 2u32));
        round_trip((1u64, "hello".to_string(), vec![1u8, 2, 3]));
        round_trip(vec![(1u32, 2u32), (3, 4)]);
        round_trip(String::from("κλειδί"));
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let mut buf = Vec::new();
        (7u64, 9u64).encode(&mut buf);
        let mut short = &buf[..buf.len() - 1];
        assert!(<(u64, u64)>::decode(&mut short).is_none());
    }

    #[test]
    fn encode_all_round_trips() {
        let items: Vec<(u64, u32)> = (0..100).map(|i| (i, (i * 3) as u32)).collect();
        let buf = encode_all(&items);
        assert_eq!(decode_all::<(u64, u32)>(&buf).unwrap(), items);
    }

    #[test]
    fn decode_all_rejects_garbage_tail() {
        let mut buf = encode_all(&[1u64, 2, 3]);
        buf.push(0xFF);
        assert!(decode_all::<u64>(&buf).is_none());
    }

    #[test]
    fn clone_via_codec_matches_value() {
        let v = (7u64, "key".to_string(), vec![1u32, 2, 3]);
        assert_eq!(v.clone_via_codec(), v);
    }

    #[test]
    fn frames_round_trip_across_boundaries() {
        // More records than one frame holds, plus the empty case.
        let items: Vec<(u64, u32)> =
            (0..(FRAME_RECORDS as u64 * 2 + 37)).map(|i| (i, (i * 7) as u32)).collect();
        let buf = encode_frames(&items);
        assert_eq!(decode_frames::<(u64, u32)>(&buf).unwrap(), items);
        let empty: Vec<u64> = Vec::new();
        let buf = encode_frames(&empty);
        assert_eq!(decode_frames::<u64>(&buf).unwrap(), empty);
    }

    #[test]
    fn flipped_bit_is_detected() {
        let items: Vec<u64> = (0..500).collect();
        let mut buf = encode_frames(&items);
        // Corrupt a payload byte (past the 16-byte frame header).
        let target = buf.len() / 2;
        buf[target] ^= 0x40;
        assert_eq!(decode_frames::<u64>(&buf), Err(FrameError::ChecksumMismatch));
    }

    #[test]
    fn truncated_frames_are_malformed() {
        let items: Vec<u64> = (0..10).collect();
        let buf = encode_frames(&items);
        assert_eq!(decode_frames::<u64>(&buf[..buf.len() - 3]), Err(FrameError::Malformed));
        assert_eq!(decode_frames::<u64>(&[]), Err(FrameError::Malformed));
    }

    #[test]
    fn verify_frames_agrees_with_decode() {
        let items: Vec<(u64, u32)> =
            (0..(FRAME_RECORDS as u64 + 11)).map(|i| (i, i as u32)).collect();
        let buf = encode_frames(&items);
        assert_eq!(verify_frames(&buf), Ok(2));
        // Concatenated sequences (how a driver stores multi-task output)
        // verify as one longer sequence.
        let double: Vec<u8> = [buf.clone(), buf.clone()].concat();
        assert_eq!(verify_frames(&double), Ok(4));
        let mut bad = buf.clone();
        let target = bad.len() - 1;
        bad[target] ^= 0x10;
        assert_eq!(verify_frames(&bad), Err(FrameError::ChecksumMismatch));
        assert_eq!(verify_frames(&buf[..buf.len() - 2]), Err(FrameError::Malformed));
        assert_eq!(verify_frames(&[]), Err(FrameError::Malformed));
    }

    proptest! {
        #[test]
        fn arbitrary_tuples_round_trip(a in any::<u64>(), s in ".{0,40}", bytes in proptest::collection::vec(any::<u8>(), 0..60)) {
            round_trip((a, s.to_string(), bytes));
        }

        #[test]
        fn arbitrary_frames_round_trip(items in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..200)) {
            let buf = encode_frames(&items);
            prop_assert_eq!(decode_frames::<(u64, u32)>(&buf).unwrap(), items);
        }
    }
}
