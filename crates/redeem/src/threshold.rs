//! Data-driven threshold inference — the §3.7 mixture model.
//!
//! The histogram of estimated `T_l` is multi-modal: a spike near 0 (k-mers
//! absent from the genome), then peaks at the coverage constant ×1, ×2, …
//! (genomic occurrence α = 1, 2, …). §3.7 models it as
//!
//! ```text
//! T_l ~ π₀·Gamma(α,β) + Σ_{g=1..G} π_g·N(μ_g, σ_g²) + π_{G+1}·U(0, max T)
//! ```
//!
//! with Negative-Binomial-linked Normal parameters `μ_g = gμp/(1−p)`,
//! `σ_g² = gμp/(1−p)²`, fit by EM; `Ĝ` is chosen by BIC. k-mers whose
//! posterior puts them in the Gamma component are declared non-genomic, so
//! the detection threshold is the largest `T` dominated by component 0.

use ngs_core::stats::{digamma, ln_gamma};

/// A fitted mixture model and the threshold it implies.
#[derive(Debug, Clone)]
pub struct MixtureFit {
    /// Mixing proportions `π_0 … π_{G+1}`.
    pub weights: Vec<f64>,
    /// Gamma shape `α`.
    pub alpha: f64,
    /// Gamma rate `β`.
    pub beta: f64,
    /// Negative-binomial location parameter `μ`.
    pub mu: f64,
    /// Negative-binomial probability parameter `p`.
    pub p: f64,
    /// Number of Normal components `G`.
    pub g: usize,
    /// Final log-likelihood.
    pub loglik: f64,
    /// BIC of the fit (lower is better).
    pub bic: f64,
    /// Detection threshold: the largest `T` whose posterior argmax is the
    /// Gamma (erroneous) component.
    pub threshold: f64,
    /// Mean of the g = 1 Normal component (`μp/(1−p)` — the coverage
    /// constant; ≈ 57 in the paper's E. coli example).
    pub coverage_constant: f64,
}

fn gamma_logpdf(x: f64, alpha: f64, beta: f64) -> f64 {
    if x <= 0.0 {
        return f64::NEG_INFINITY;
    }
    alpha * beta.ln() + (alpha - 1.0) * x.ln() - beta * x - ln_gamma(alpha)
}

fn normal_logpdf(x: f64, mean: f64, var: f64) -> f64 {
    let var = var.max(1e-9);
    -0.5 * ((x - mean) * (x - mean) / var + var.ln() + (2.0 * std::f64::consts::PI).ln())
}

/// Solve `ln α − ψ(α) = c` for `α > 0` by bisection (the Gamma M-step).
fn solve_gamma_shape(c: f64) -> f64 {
    // ln α − ψ(α) is strictly decreasing in α, → ∞ as α→0, → 0 as α→∞.
    if c <= 1e-12 {
        return 1e6; // effectively Normal-shaped: huge alpha
    }
    let (mut lo, mut hi) = (1e-6f64, 1e6f64);
    for _ in 0..200 {
        let mid = (lo * hi).sqrt(); // geometric bisection over decades
        let v = mid.ln() - digamma(mid);
        if v > c {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi / lo < 1.0 + 1e-12 {
            break;
        }
    }
    (lo * hi).sqrt()
}

/// Fit the mixture for a fixed `G`; returns `None` when degenerate.
fn fit_fixed_g(t: &[f64], g: usize, max_iters: usize) -> Option<MixtureFit> {
    let n = t.len();
    if n < 10 * (g + 2) {
        return None;
    }
    let t_max = t.iter().cloned().fold(0.0f64, f64::max).max(1.0);
    let uniform_logpdf = -(t_max.ln());

    // Initialisation: coverage constant from the median of clearly-nonzero
    // values; Gamma hugging zero.
    let mut nz: Vec<f64> = t.iter().cloned().filter(|&x| x > 2.0).collect();
    if nz.is_empty() {
        return None;
    }
    nz.sort_unstable_by(f64::total_cmp);
    let cov0 = nz[nz.len() / 2].max(3.0);
    let mut p = 0.5f64;
    let mut mu = cov0 * (1.0 - p) / p; // so that μp/(1−p) = cov0
    let mut alpha = 1.0f64;
    let mut beta = 1.0f64;
    let n_comp = g + 2;
    let mut weights = vec![1.0 / n_comp as f64; n_comp];

    let mut loglik = f64::NEG_INFINITY;
    let mut resp = vec![0.0f64; n * n_comp];
    for _iter in 0..max_iters {
        // E step.
        let mut ll = 0.0;
        let mut counts = vec![0.0f64; n_comp]; // E[N_g]
        let mut sum_t = vec![0.0f64; n_comp]; // E[T | Z_g]·N_g
        let mut sum_t2 = vec![0.0f64; n_comp];
        let mut sum_lnt_0 = 0.0f64;
        let coverage = mu * p / (1.0 - p);
        for (i, &x) in t.iter().enumerate() {
            let mut logp = vec![0.0f64; n_comp];
            logp[0] = weights[0].max(1e-300).ln() + gamma_logpdf(x.max(1e-6), alpha, beta);
            for comp in 1..=g {
                let mean = comp as f64 * coverage;
                let var = comp as f64 * mu * p / ((1.0 - p) * (1.0 - p));
                logp[comp] = weights[comp].max(1e-300).ln() + normal_logpdf(x, mean, var);
            }
            logp[g + 1] = weights[g + 1].max(1e-300).ln() + uniform_logpdf;
            let m = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut z = 0.0;
            for lp in &mut logp {
                *lp = (*lp - m).exp();
                z += *lp;
            }
            ll += m + z.ln();
            for (comp, &pz) in logp.iter().enumerate() {
                let r = pz / z;
                resp[i * n_comp + comp] = r;
                counts[comp] += r;
                sum_t[comp] += r * x;
                sum_t2[comp] += r * x * x;
            }
            sum_lnt_0 += resp[i * n_comp] * x.max(1e-6).ln();
        }

        // M step: mixing weights.
        for (comp, w) in weights.iter_mut().enumerate() {
            *w = (counts[comp] / n as f64).max(1e-9);
        }

        // Gamma component.
        if counts[0] > 1e-6 && sum_t[0] > 1e-12 {
            let c = (sum_t[0] / counts[0]).ln() - sum_lnt_0 / counts[0];
            alpha = solve_gamma_shape(c.max(1e-9)).clamp(0.05, 1e4);
            beta = counts[0] * alpha / sum_t[0];
        }

        // Negative-binomial-linked Normal components: solve for p̂ by
        // bisection with μ̂ given by the closed form of §3.7.
        let s_n: f64 = (1..=g).map(|c| counts[c]).sum();
        let s_gn: f64 = (1..=g).map(|c| c as f64 * counts[c]).sum();
        let s_t: f64 = (1..=g).map(|c| sum_t[c]).sum();
        let s_t2g: f64 = (1..=g).map(|c| sum_t2[c] / c as f64).sum();
        if s_n > 1e-6 && s_gn > 1e-9 && s_t2g > 1e-9 {
            let mu_of = |ph: f64| -> f64 {
                let disc = s_n * s_n + 4.0 * (1.0 - ph) * (1.0 - ph) * s_gn * s_t2g;
                // The positive root of the quadratic in μ (§3.7's form has a
                // negative denominator; take the root giving μ > 0).
                (disc.sqrt() - s_n) / (2.0 * ph * s_gn)
            };
            let f_of = |ph: f64| -> f64 {
                let m = mu_of(ph);
                (1.0 - ph) * (1.0 + ph) * s_t2g
                    - 2.0 * m * ph * ph * s_t
                    - m * m * ph * ph * s_gn
                    - m * ph * (1.0 + ph) / (1.0 - ph) * s_n
            };
            let (mut lo, mut hi) = (1e-4, 1.0 - 1e-4);
            let (flo, fhi) = (f_of(lo), f_of(hi));
            if flo.is_finite() && fhi.is_finite() && flo * fhi < 0.0 {
                for _ in 0..100 {
                    let mid = 0.5 * (lo + hi);
                    if f_of(mid) * flo > 0.0 {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                p = 0.5 * (lo + hi);
                mu = mu_of(p).max(1e-6);
            } else {
                // Fall back to moment matching: mean and variance of the
                // g-scaled pooled component.
                let mean1 = s_t / s_gn; // per-copy mean
                let var1 = (s_t2g / s_n - mean1 * mean1 * (s_gn / s_n)).abs().max(1e-6);
                // mean1 = μp/(1−p), var1 ≈ μp/(1−p)²  =>  1−p = mean1/var1.
                let q = (mean1 / var1).clamp(1e-4, 1.0 - 1e-4);
                p = 1.0 - q;
                mu = (mean1 * (1.0 - p) / p).max(1e-6);
            }
        }

        if (ll - loglik).abs() < 1e-8 * ll.abs().max(1.0) {
            loglik = ll;
            break;
        }
        loglik = ll;
    }

    // BIC: parameters = (n_comp − 1) mixing + α, β, μ, p.
    let k_params = (n_comp - 1) + 4;
    let bic = -2.0 * loglik + k_params as f64 * (n as f64).ln();

    // Threshold: largest T assigned to the Gamma component by posterior
    // argmax, scanning a fine grid up to the first Normal mean.
    let coverage = mu * p / (1.0 - p);
    let var1 = mu * p / ((1.0 - p) * (1.0 - p));
    let mut threshold = 0.0f64;
    let grid_max = coverage.max(2.0);
    let steps = 400;
    for s in 0..=steps {
        let x = grid_max * s as f64 / steps as f64;
        let lg = weights[0].max(1e-300).ln() + gamma_logpdf(x.max(1e-6), alpha, beta);
        let ln1 = weights[1].max(1e-300).ln() + normal_logpdf(x, coverage, var1);
        let lu = weights[g + 1].max(1e-300).ln() + (-(t_max.ln()));
        if lg > ln1 && lg > lu {
            threshold = x;
        }
    }

    Some(MixtureFit {
        weights,
        alpha,
        beta,
        mu,
        p,
        g,
        loglik,
        bic,
        threshold,
        coverage_constant: coverage,
    })
}

/// Estimate genome length and repeat structure from EM estimates — §3.6:
/// "Indeed, T_l can be used to estimate genome length and repetition [Li
/// and Waterman, 2003]": each genomic k-mer of occurrence `α` contributes
/// `α · coverage_constant` expected attempts, so
/// `|G| ≈ Σ T_l / coverage_constant` (k-mer-level length, i.e. `|G| − k + 1`
/// for a single-stranded spectrum).
pub fn estimate_genome_length(t: &[f64], coverage_constant: f64) -> f64 {
    if coverage_constant <= 0.0 {
        return 0.0;
    }
    t.iter().sum::<f64>() / coverage_constant
}

/// Fit the §3.7 mixture for `G ∈ 1..=max_g`, choosing Ĝ by BIC, and return
/// the winning fit (with its implied detection threshold). Returns `None`
/// when the data is degenerate (e.g. all-zero estimates).
pub fn fit_threshold_model(t: &[f64], max_g: usize) -> Option<MixtureFit> {
    fit_threshold_model_observed(t, max_g, &ngs_observe::Collector::disabled())
}

/// [`fit_threshold_model`] with observability: the whole BIC sweep runs
/// under the `redeem.threshold.fit` span, each candidate `G` leaves its BIC
/// in the `redeem.threshold.bic.g<G>` gauge (gauges merge by minimum, which
/// is exactly the BIC selection rule), and the winner's threshold and
/// coverage constant land in `redeem.threshold.value` /
/// `redeem.threshold.coverage_constant`.
pub fn fit_threshold_model_observed(
    t: &[f64],
    max_g: usize,
    collector: &ngs_observe::Collector,
) -> Option<MixtureFit> {
    let _span = collector.span("redeem.threshold.fit");
    let best = (1..=max_g.max(1))
        .filter_map(|g| {
            let fit = fit_fixed_g(t, g, 200)?;
            collector.add("redeem.threshold.candidates", 1);
            collector.gauge(&format!("redeem.threshold.bic.g{g}"), fit.bic);
            Some(fit)
        })
        .min_by(|a, b| a.bic.total_cmp(&b.bic));
    if let Some(fit) = &best {
        collector.gauge("redeem.threshold.best_bic", fit.bic);
        collector.gauge("redeem.threshold.value", fit.threshold);
        collector.gauge("redeem.threshold.coverage_constant", fit.coverage_constant);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn synthetic_t(coverage: f64, n_err: usize, n1: usize, n2: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Vec::new();
        for _ in 0..n_err {
            // Error kmers: small values hugging zero.
            t.push(rng.gen_range(0.0..2.0f64));
        }
        for _ in 0..n1 {
            let x: f64 = coverage + rng.gen_range(-3.0 * coverage.sqrt()..3.0 * coverage.sqrt());
            t.push(x.max(0.1));
        }
        for _ in 0..n2 {
            let x: f64 =
                2.0 * coverage + rng.gen_range(-4.0 * coverage.sqrt()..4.0 * coverage.sqrt());
            t.push(x.max(0.1));
        }
        t
    }

    #[test]
    fn gamma_shape_solver_inverts() {
        for alpha in [0.3f64, 1.0, 2.5, 10.0, 100.0] {
            let c = alpha.ln() - digamma(alpha);
            let back = solve_gamma_shape(c);
            assert!((back - alpha).abs() / alpha < 1e-3, "alpha={alpha} back={back}");
        }
    }

    #[test]
    fn recovers_coverage_constant() {
        let t = synthetic_t(57.0, 4000, 3000, 400, 1);
        let fit = fit_threshold_model(&t, 3).expect("fit");
        assert!(
            (fit.coverage_constant - 57.0).abs() < 10.0,
            "coverage constant {} (expected ~57)",
            fit.coverage_constant
        );
    }

    #[test]
    fn threshold_separates_modes() {
        let t = synthetic_t(60.0, 5000, 3000, 300, 2);
        let fit = fit_threshold_model(&t, 3).expect("fit");
        assert!(
            fit.threshold > 2.0 && fit.threshold < 40.0,
            "threshold {} should fall between the error spike and the \
             coverage peak",
            fit.threshold
        );
        // Classification sanity: nearly all error kmers below, genomic above.
        let err_below = t[..5000].iter().filter(|&&x| x < fit.threshold).count();
        let gen_above = t[5000..].iter().filter(|&&x| x >= fit.threshold).count();
        assert!(err_below > 4800, "err_below={err_below}");
        assert!(gen_above > 3200, "gen_above={gen_above}");
    }

    #[test]
    fn bic_prefers_enough_components() {
        let t = synthetic_t(50.0, 3000, 2500, 800, 3);
        let fit = fit_threshold_model(&t, 4).expect("fit");
        assert!(fit.g >= 1);
        assert!(fit.loglik.is_finite());
        assert!(fit.bic.is_finite());
    }

    #[test]
    fn genome_length_estimate() {
        // 1000 unique kmers at coverage 50 plus 100 two-copy kmers at 100.
        let mut t = vec![50.0; 1000];
        t.extend(vec![100.0; 100]);
        let est = estimate_genome_length(&t, 50.0);
        // True kmer-level genome length = 1000 + 2*100 = 1200.
        assert!((est - 1200.0).abs() < 1e-9, "est {est}");
        assert_eq!(estimate_genome_length(&t, 0.0), 0.0);
    }

    #[test]
    fn observed_fit_traces_bic_per_candidate() {
        let t = synthetic_t(50.0, 3000, 2500, 800, 7);
        let collector = ngs_observe::Collector::new();
        let fit = fit_threshold_model_observed(&t, 3, &collector).expect("fit");
        let report = collector.report("redeem");
        assert!(report.span("redeem.threshold.fit").is_some());
        assert_eq!(report.counter("redeem.threshold.candidates"), 3);
        // Every candidate G leaves its BIC, and the winner's BIC is the min.
        let best = report.gauges["redeem.threshold.best_bic"];
        assert_eq!(best, fit.bic);
        for g in 1..=3 {
            assert!(report.gauges[&format!("redeem.threshold.bic.g{g}")] >= best);
        }
        assert_eq!(report.gauges["redeem.threshold.value"], fit.threshold);
    }

    #[test]
    fn degenerate_input_returns_none() {
        assert!(fit_threshold_model(&[], 3).is_none());
        let tiny = vec![0.5; 5];
        assert!(fit_threshold_model(&tiny, 3).is_none());
        let zeros = vec![0.0; 1000];
        assert!(fit_threshold_model(&zeros, 3).is_none());
    }
}
