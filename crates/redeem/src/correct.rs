//! Per-base posterior correction (§3.3).
//!
//! "Suppose the nucleotide at position i of the read appears at position t
//! of kmer x_l. The probability that the true nucleotide at position t was
//! b prior to possible misread is
//!
//! ```text
//! π_t(b) = Σ_{x_m ∈ N(l), x_mt = b} α_m pe(x_m, x_l)
//!        / Σ_{x_m ∈ N(l)}           α_m pe(x_m, x_l)
//! ```
//!
//! where estimates T_m are substituted for the unknown α_m. Since multiple
//! overlapping kmers provide non-independent information about the base at
//! position i, we average across available t … If argmax_b π(b) ≠ r[i],
//! then we declare nucleotide r[i] misread and correct it. To limit
//! computations, we apply this method to reads likely to contain at least
//! one erroneous kmer, as identified with a liberal threshold M."

use crate::em::Redeem;
use crate::error_model::KmerErrorModel;
use ngs_core::{alphabet, Read};
use ngs_kmer::packed::packed_base;
use rayon::prelude::*;

/// Correct `reads` using EM estimates `t` (parallel to the model's
/// spectrum). Only reads containing a k-mer with `T < liberal_threshold`
/// are processed; k-mers detected as erroneous (`T < detect_threshold`)
/// contribute no source mass to the posterior — detection feeds correction,
/// as §3.5 puts it: "Relying on the overlapping erroneous kmers, we correct
/// errors in the reads". Returns corrected copies.
pub fn correct_reads(
    redeem: &Redeem,
    model: &KmerErrorModel,
    t: &[f64],
    reads: &[Read],
    liberal_threshold: f64,
    detect_threshold: f64,
) -> Vec<Read> {
    let spectrum = redeem.spectrum();
    let k = spectrum.k();
    assert_eq!(t.len(), spectrum.len());
    reads
        .par_iter()
        .map(|r| {
            let mut read = r.clone();
            correct_one(redeem, model, t, &mut read, liberal_threshold, detect_threshold, k);
            read
        })
        .collect()
}

#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn correct_one(
    redeem: &Redeem,
    model: &KmerErrorModel,
    t: &[f64],
    read: &mut Read,
    liberal_threshold: f64,
    detect_threshold: f64,
    k: usize,
) {
    let spectrum = redeem.spectrum();
    if read.len() < k {
        return;
    }
    // Gate: does the read contain a suspicious k-mer?
    let kmers = ngs_kmer::kmers_of(&read.seq, k);
    if kmers.is_empty() {
        return;
    }
    let suspicious =
        kmers.iter().any(|&(_, v)| spectrum.index_of(v).is_none_or(|i| t[i] < liberal_threshold));
    if !suspicious {
        return;
    }

    // Accumulate per-base posteriors averaged over covering k-mers.
    let len = read.len();
    let mut post = vec![[0.0f64; 4]; len];
    let mut cover = vec![0u32; len];
    for &(offset, v) in &kmers {
        let Some(l) = spectrum.index_of(v) else { continue };
        // Posterior over sources m for this observed k-mer instance.
        let (s, e) = (redeem.offset_of(l), redeem.offset_of(l + 1));
        let nbr = redeem.neighbors_raw();
        let mut weights = Vec::with_capacity(e - s);
        let mut z = 0.0f64;
        for &m in &nbr[s..e] {
            let m = m as usize;
            // Detected-erroneous k-mers are not valid source sequences:
            // substitute alpha_m = 0 for them.
            if t[m] < detect_threshold {
                continue;
            }
            let w = t[m] * model.pe(spectrum.kmers()[m], v);
            weights.push((m, w));
            z += w;
        }
        if z <= 0.0 {
            continue;
        }
        for pos_in_kmer in 0..k {
            let read_pos = offset + pos_in_kmer;
            let mut pb = [0.0f64; 4];
            for &(m, w) in &weights {
                let b = packed_base(spectrum.kmers()[m], k, pos_in_kmer) as usize;
                pb[b] += w;
            }
            for b in 0..4 {
                post[read_pos][b] += pb[b] / z;
            }
            cover[read_pos] += 1;
        }
    }

    for i in 0..len {
        if cover[i] == 0 {
            continue;
        }
        let (mut best, mut best_p) = (0usize, -1.0f64);
        for b in 0..4 {
            if post[i][b] > best_p {
                best_p = post[i][b];
                best = b;
            }
        }
        let new_base = alphabet::decode_base(best as u8);
        if new_base != read.seq[i] {
            read.seq[i] = new_base;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::EmConfig;
    use ngs_eval::evaluate_correction;
    use ngs_simulate::{simulate_reads, ErrorModel, GenomeSpec, ReadSimConfig, RepeatClass};

    fn run_pipeline(
        repeats: Vec<RepeatClass>,
        pe: f64,
        seed: u64,
    ) -> (ngs_simulate::SimulatedReads, Vec<Read>) {
        let g = GenomeSpec::with_repeats(6_000, repeats).generate(41).seq;
        let cfg = ReadSimConfig {
            read_len: 36,
            n_reads: 6_000 * 60 / 36,
            error_model: ErrorModel::uniform(36, pe),
            both_strands: false,
            with_quals: false,
            n_rate: 0.0,
            seed,
        };
        let sim = simulate_reads(&g, &cfg);
        let k = 9;
        let km = KmerErrorModel::uniform(k, pe);
        let redeem = Redeem::new(&sim.reads, k, &km, 1);
        let res = redeem.run(&EmConfig::default());
        // Liberal threshold: half the coverage constant.
        let cov = 60.0 / 36.0 * (36 - k + 1) as f64;
        let corrected = correct_reads(&redeem, &km, &res.t, &sim.reads, cov * 0.5, cov * 0.25);
        (sim, corrected)
    }

    #[test]
    fn corrects_errors_on_plain_genome() {
        let (sim, corrected) = run_pipeline(vec![], 0.01, 1);
        let truths: Vec<Vec<u8>> = sim.truth.iter().map(|t| t.true_seq.clone()).collect();
        let eval = evaluate_correction(&sim.reads, &corrected, &truths);
        assert!(eval.gain() > 0.5, "gain={} {eval:?}", eval.gain());
    }

    #[test]
    fn corrects_errors_on_repeat_rich_genome() {
        let (sim, corrected) = run_pipeline(
            vec![
                RepeatClass { length: 150, multiplicity: 10 },
                RepeatClass { length: 300, multiplicity: 5 },
            ],
            0.01,
            2,
        );
        let truths: Vec<Vec<u8>> = sim.truth.iter().map(|t| t.true_seq.clone()).collect();
        let eval = evaluate_correction(&sim.reads, &corrected, &truths);
        assert!(eval.gain() > 0.4, "gain={} {eval:?}", eval.gain());
    }

    #[test]
    fn error_free_reads_mostly_untouched() {
        let (sim, corrected) = run_pipeline(vec![], 0.0, 3);
        let truths: Vec<Vec<u8>> = sim.truth.iter().map(|t| t.true_seq.clone()).collect();
        let eval = evaluate_correction(&sim.reads, &corrected, &truths);
        assert_eq!(eval.fp, 0, "{eval:?}");
    }
}
