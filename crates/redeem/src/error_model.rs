//! Position-specific misread probabilities in k-mer coordinates (§3.2).
//!
//! `q_i(α,β)` is the probability that nucleotide `α` at position `i` of a
//! k-mer is (mis)read as `β`, with rows summing to 1. The misread
//! probability between whole k-mers is the product over positions:
//! `pe(x_m, x_l) = Π_i q_i(x_mi, x_li)`.
//!
//! §3.4.2 tests four variants: **tIED** (the true Illumina error
//! distribution, estimated from the same data that drove the simulation),
//! **wIED** (an Illumina distribution estimated from a *different*
//! dataset), **tUED** (uniform with the true average rate) and **wUED**
//! (uniform with an overestimated rate).

#![allow(clippy::needless_range_loop)] // 4x4 matrix math reads best with indices

use ngs_kmer::packed::{packed_base, Kmer};

/// k 4×4 stochastic matrices: `q[i][alpha][beta]`.
#[derive(Debug, Clone)]
pub struct KmerErrorModel {
    q: Vec<[[f64; 4]; 4]>,
}

impl KmerErrorModel {
    /// Uniform error model (Eq. 3.1): every position errs with probability
    /// `pe`, uniformly over the three alternatives.
    pub fn uniform(k: usize, pe: f64) -> KmerErrorModel {
        assert!((0.0..1.0).contains(&pe));
        let mut m = [[0.0f64; 4]; 4];
        for (a, row) in m.iter_mut().enumerate() {
            for (b, cell) in row.iter_mut().enumerate() {
                *cell = if a == b { 1.0 - pe } else { pe / 3.0 };
            }
        }
        KmerErrorModel { q: vec![m; k] }
    }

    /// Build from raw per-position matrices.
    ///
    /// # Panics
    /// Panics if any row does not sum to ~1.
    pub fn from_matrices(q: Vec<[[f64; 4]; 4]>) -> KmerErrorModel {
        for (i, m) in q.iter().enumerate() {
            for (a, row) in m.iter().enumerate() {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-6, "q[{i}][{a}] row sums to {s}");
            }
        }
        KmerErrorModel { q }
    }

    /// Project a read-position error model onto k-mer coordinates, as in
    /// §3.4.2: "each read is decomposed into L−k+1 kmers and the count of
    /// each type of misread nucleotide at each kmer position is determined"
    /// — k-mer position `i` sees read positions `i, i+1, …, i+L−k`, so its
    /// matrix is the average of those read-position matrices.
    pub fn from_read_model(model: &ngs_simulate::ErrorModel, k: usize) -> KmerErrorModel {
        let read_len = model.read_len();
        assert!(k <= read_len);
        let windows = read_len - k + 1;
        let q = (0..k)
            .map(|i| {
                let mut acc = [[0.0f64; 4]; 4];
                for w in 0..windows {
                    let m = model.matrix(i + w);
                    for a in 0..4 {
                        for b in 0..4 {
                            acc[a][b] += m[a][b];
                        }
                    }
                }
                for row in &mut acc {
                    for cell in row.iter_mut() {
                        *cell /= windows as f64;
                    }
                }
                acc
            })
            .collect();
        KmerErrorModel { q }
    }

    /// Estimate from `(observed, truth)` k-mer-decomposed read pairs — the
    /// same counting §3.4.2 describes. Pairs are read-length sequences; each
    /// contributes counts at every k-mer offset it covers.
    pub fn estimate(pairs: &[(&[u8], &[u8])], k: usize) -> KmerErrorModel {
        let mut counts = vec![[[0u64; 4]; 4]; k];
        for (obs, truth) in pairs {
            let l = obs.len().min(truth.len());
            if l < k {
                continue;
            }
            for start in 0..=(l - k) {
                for i in 0..k {
                    let (o, t) = (obs[start + i], truth[start + i]);
                    if let (Some(oc), Some(tc)) =
                        (ngs_core::alphabet::encode_base(o), ngs_core::alphabet::encode_base(t))
                    {
                        counts[i][tc as usize][oc as usize] += 1;
                    }
                }
            }
        }
        let q = counts
            .into_iter()
            .map(|c| {
                let mut m = [[0.0f64; 4]; 4];
                for a in 0..4 {
                    let total: u64 = c[a].iter().sum();
                    if total == 0 {
                        m[a][a] = 1.0;
                    } else {
                        for b in 0..4 {
                            m[a][b] = c[a][b] as f64 / total as f64;
                        }
                    }
                }
                m
            })
            .collect();
        KmerErrorModel { q }
    }

    /// The k this model covers.
    pub fn k(&self) -> usize {
        self.q.len()
    }

    /// `q_i(α,β)` matrix at k-mer position `i`.
    pub fn matrix(&self, i: usize) -> &[[f64; 4]; 4] {
        &self.q[i]
    }

    /// Misread probability `pe(x_m → x_l) = Π_i q_i(x_mi, x_li)` between two
    /// packed k-mers.
    pub fn pe(&self, from: Kmer, to: Kmer) -> f64 {
        let k = self.q.len();
        let mut p = 1.0;
        for (i, m) in self.q.iter().enumerate() {
            let a = packed_base(from, k, i) as usize;
            let b = packed_base(to, k, i) as usize;
            p *= m[a][b];
        }
        p
    }

    /// Like [`KmerErrorModel::pe`] but skipping matched positions'
    /// diagonal terms is *not* valid (diagonals differ from 1), so this
    /// computes only the off-diagonal corrections relative to the diagonal
    /// product — a faster path used in the EM inner loops:
    /// `pe(from→to) = diag(from) · Π_{i: from_i≠to_i} q_i(f,t)/q_i(f,f)`.
    pub fn pe_with_diag(&self, from: Kmer, to: Kmer, diag_from: f64) -> f64 {
        let k = self.q.len();
        let mut x = from ^ to;
        let mut p = diag_from;
        while x != 0 {
            // Lowest differing 2-bit group.
            let bit = x.trailing_zeros() as usize & !1;
            let i = k - 1 - bit / 2;
            let a = packed_base(from, k, i) as usize;
            let b = packed_base(to, k, i) as usize;
            p *= self.q[i][a][b] / self.q[i][a][a];
            x &= !(3u64 << bit);
        }
        p
    }

    /// The diagonal product `Π_i q_i(x_i, x_i)` — probability the k-mer is
    /// read without error.
    pub fn diag(&self, kmer: Kmer) -> f64 {
        let k = self.q.len();
        self.q
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let a = packed_base(kmer, k, i) as usize;
                m[a][a]
            })
            .product()
    }

    /// Average per-base error rate implied by the model.
    pub fn average_error_rate(&self) -> f64 {
        let k = self.q.len() as f64;
        self.q.iter().map(|m| 1.0 - (0..4).map(|a| m[a][a]).sum::<f64>() / 4.0).sum::<f64>() / k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngs_kmer::packed::encode_kmer;

    #[test]
    fn uniform_pe_matches_closed_form() {
        let k = 5;
        let pe = 0.01;
        let m = KmerErrorModel::uniform(k, pe);
        let a = encode_kmer(b"ACGTA").unwrap();
        let b = encode_kmer(b"ACGTG").unwrap(); // distance 1
        let expect = (1.0 - pe_f(pe)).powi(4) * (pe_f(pe) / 3.0);
        fn pe_f(p: f64) -> f64 {
            p
        }
        assert!((m.pe(a, b) - expect).abs() < 1e-15);
        // Identity case.
        assert!((m.pe(a, a) - (1.0 - pe).powi(5)).abs() < 1e-15);
    }

    #[test]
    fn pe_asymmetric_for_biased_model() {
        // A->G much likelier than G->A at position 0.
        let mut q = vec![[[0.0f64; 4]; 4]; 3];
        for m in &mut q {
            for a in 0..4 {
                for b in 0..4 {
                    m[a][b] = if a == b { 0.97 } else { 0.01 };
                }
            }
        }
        q[0][0][2] = 0.05;
        q[0][0][0] = 0.93;
        let model = KmerErrorModel::from_matrices(q);
        let a = encode_kmer(b"ACC").unwrap();
        let g = encode_kmer(b"GCC").unwrap();
        assert!(model.pe(a, g) > model.pe(g, a));
    }

    #[test]
    fn pe_with_diag_matches_pe() {
        let m = KmerErrorModel::uniform(7, 0.02);
        let a = encode_kmer(b"ACGTACG").unwrap();
        for b in [b"ACGTACG".as_ref(), b"TCGTACG", b"ACGAACG", b"TTTTACG"] {
            let b = encode_kmer(b).unwrap();
            let fast = m.pe_with_diag(a, b, m.diag(a));
            assert!((fast - m.pe(a, b)).abs() < 1e-15, "mismatch for {b:?}");
        }
    }

    #[test]
    fn from_read_model_averages_positions() {
        let rm = ngs_simulate::ErrorModel::illumina_like(36, 0.01);
        let km = KmerErrorModel::from_read_model(&rm, 13);
        // Later k-mer positions average later (worse) read positions.
        let early = 1.0 - (0..4).map(|a| km.matrix(0)[a][a]).sum::<f64>() / 4.0;
        let late = 1.0 - (0..4).map(|a| km.matrix(12)[a][a]).sum::<f64>() / 4.0;
        assert!(late > early);
        // Rows still stochastic.
        for i in 0..13 {
            for a in 0..4 {
                let s: f64 = km.matrix(i)[a].iter().sum();
                assert!((s - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn estimate_recovers_planted_rate() {
        // 10% A->T misreads at every position.
        let observed: Vec<Vec<u8>> = (0..1000)
            .map(|i| if i % 10 == 0 { b"TAAA".to_vec() } else { b"AAAA".to_vec() })
            .collect();
        let truth = vec![b"AAAA".to_vec(); 1000];
        let pairs: Vec<(&[u8], &[u8])> =
            observed.iter().zip(&truth).map(|(o, t)| (o.as_slice(), t.as_slice())).collect();
        let m = KmerErrorModel::estimate(&pairs, 3);
        // kmer position 0 sees read positions 0 and 1: A->T rate is
        // (10% + 0%) / 2 = 5%.
        assert!((m.matrix(0)[0][3] - 0.05).abs() < 1e-9, "{}", m.matrix(0)[0][3]);
    }

    #[test]
    fn average_error_rate_of_uniform() {
        let m = KmerErrorModel::uniform(11, 0.006);
        assert!((m.average_error_rate() - 0.006).abs() < 1e-12);
    }
}
