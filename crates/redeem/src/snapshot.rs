//! Checkpoint serialization for REDEEM: the misread-graph model
//! ([`Redeem`]) and the EM iteration state ([`EmState`]).
//!
//! `redeem-detect --checkpoint-dir` snapshots two stage boundaries: the
//! model after graph construction (spectrum + CSR neighbourhoods + weights
//! — the expensive part), and the EM state every N iterations. All floats
//! round-trip through `f64::to_bits`, so a resumed EM continues with
//! bit-identical state (see `EmState`'s resume-equivalence tests).

use crate::em::{EmState, Redeem};
use ngs_core::{NgsError, Result};
use ngs_durable::{ByteReader, ByteWriter};
use ngs_kmer::KSpectrum;

const MODEL_MAGIC: &str = "REDEMMD1";
const STATE_MAGIC: &str = "REDEMEM1";

impl EmState {
    /// Serialize for checkpointing.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(64 + 8 * (self.t.len() + self.loglik_trace.len()));
        w.put_str(STATE_MAGIC);
        w.put_u8(u8::from(self.converged));
        w.put_usize(self.iterations);
        w.put_f64(self.prev_ll);
        w.put_f64_slice(&self.loglik_trace);
        w.put_f64_slice(&self.t);
        w.into_bytes()
    }

    /// Rebuild from [`EmState::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<EmState> {
        let mut r = ByteReader::new(bytes);
        if r.get_str()? != STATE_MAGIC {
            return Err(NgsError::MalformedRecord("EM state: bad magic or version".into()));
        }
        let converged = r.get_u8()? != 0;
        let iterations = r.get_usize()?;
        let prev_ll = r.get_f64()?;
        let loglik_trace = r.get_f64_vec()?;
        let t = r.get_f64_vec()?;
        r.finish()?;
        if loglik_trace.len() != iterations {
            return Err(NgsError::MalformedRecord(format!(
                "EM state: {} trace entries for {iterations} iterations",
                loglik_trace.len()
            )));
        }
        Ok(EmState { t, prev_ll, loglik_trace, iterations, converged })
    }
}

impl Redeem {
    /// Serialize the full model (spectrum, CSR misread graph, weights) for
    /// checkpointing.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let (offsets, nbr, w_out, w_in) = self.csr_parts();
        let mut w = ByteWriter::with_capacity(64 + nbr.len() * 20 + self.spectrum().len() * 20);
        w.put_str(MODEL_MAGIC);
        w.put_usize(self.spectrum().k());
        w.put_u64_slice(self.spectrum().kmers());
        w.put_usize(self.spectrum().counts().len());
        for &c in self.spectrum().counts() {
            w.put_u32(c);
        }
        w.put_u32_slice(offsets);
        w.put_u32_slice(nbr);
        w.put_f64_slice(w_out);
        w.put_f64_slice(w_in);
        w.into_bytes()
    }

    /// Rebuild a model from [`Redeem::snapshot_bytes`] output, re-validating
    /// the CSR structural invariants so a corrupt snapshot errors instead of
    /// panicking mid-EM.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Redeem> {
        let mut r = ByteReader::new(bytes);
        if r.get_str()? != MODEL_MAGIC {
            return Err(NgsError::MalformedRecord("redeem snapshot: bad magic or version".into()));
        }
        let k = r.get_usize()?;
        let kmers = r.get_u64_vec()?;
        let n_counts = r.get_usize()?;
        let mut counts = Vec::with_capacity(n_counts.min(kmers.len() + 1));
        for _ in 0..n_counts {
            counts.push(r.get_u32()?);
        }
        let spectrum = KSpectrum::from_sorted(k, kmers, counts)
            .map_err(|e| NgsError::MalformedRecord(format!("redeem snapshot: {e}")))?;
        let offsets = r.get_u32_vec()?;
        let nbr = r.get_u32_vec()?;
        let w_out = r.get_f64_vec()?;
        let w_in = r.get_f64_vec()?;
        r.finish()?;
        Redeem::from_csr_parts(spectrum, offsets, nbr, w_out, w_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::EmConfig;
    use crate::error_model::KmerErrorModel;
    use ngs_core::Read;

    fn model() -> Redeem {
        let reads: Vec<Read> = (0..30)
            .map(|i| {
                let mut seq = b"ACGTACGTTGCATGCAACGT".to_vec();
                if i % 7 == 0 {
                    seq[5] = b'A';
                }
                Read::new(format!("r{i}"), seq)
            })
            .collect();
        let km = KmerErrorModel::uniform(7, 0.01);
        Redeem::new(&reads, 7, &km, 1)
    }

    #[test]
    fn model_snapshot_round_trips_to_identical_em() {
        let m = model();
        let bytes = m.snapshot_bytes();
        let restored = Redeem::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(restored.spectrum().kmers(), m.spectrum().kmers());
        assert_eq!(restored.snapshot_bytes(), bytes);
        let cfg = EmConfig { dmax: 1, max_iters: 10, tol: 0.0 };
        let a = m.run(&cfg);
        let b = restored.run(&cfg);
        for (x, y) in a.t.iter().zip(&b.t) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn em_state_round_trips_bit_exactly() {
        let s = EmState {
            t: vec![1.5, -0.0, f64::MIN_POSITIVE, 3.75e300],
            prev_ll: -123.456,
            loglik_trace: vec![-200.0, -150.0, -123.456],
            iterations: 3,
            converged: false,
        };
        let back = EmState::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back.iterations, 3);
        assert!(!back.converged);
        assert_eq!(back.prev_ll.to_bits(), s.prev_ll.to_bits());
        for (a, b) in back.t.iter().zip(&s.t) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn corrupt_snapshots_error() {
        let m = model();
        let bytes = m.snapshot_bytes();
        assert!(Redeem::from_snapshot_bytes(&bytes[..bytes.len() - 9]).is_err());
        assert!(Redeem::from_snapshot_bytes(b"nope").is_err());
        let s = EmState::initial(&[1.0, 2.0]);
        let sb = s.to_bytes();
        assert!(EmState::from_bytes(&sb[..sb.len() - 1]).is_err());
        // Trace/iteration mismatch is rejected.
        let bad = EmState {
            t: vec![1.0],
            prev_ll: 0.0,
            loglik_trace: vec![0.0, 1.0],
            iterations: 5,
            converged: false,
        };
        assert!(EmState::from_bytes(&bad.to_bytes()).is_err());
    }
}
