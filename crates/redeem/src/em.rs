//! The REDEEM EM algorithm (§3.2).
//!
//! Observed k-mer counts follow a multinomial whose category probabilities
//! mix the true sampling rates of all k-mers in the (incomplete, observed-
//! only) neighbourhood: `p_l = Σ_{x_m ∈ N^{dmax}_l} s_m · pe(x_m, x_l)`.
//! The EM update equations, initialised with `T_l = Y_l`:
//!
//! ```text
//! E:  E[Y_lm | Y, T] = Y_m · T_l · pe(x_l, x_m) / Σ_{l'} T_{l'} · pe(x_{l'}, x_m)
//! M:  T_l = Σ_m E[Y_lm | Y, T]
//! ```
//!
//! `P_e` is sparse (capped at `d_max`) and row-normalised over the observed
//! neighbourhood, exactly as §3.2 prescribes.

use crate::error_model::KmerErrorModel;
use ngs_core::Read;
use ngs_kmer::neighbor::{NeighborIndex, NeighborStrategy};
use ngs_kmer::KSpectrum;
use rayon::prelude::*;

/// EM configuration.
#[derive(Debug, Clone)]
pub struct EmConfig {
    /// Maximum Hamming distance for the k-mer neighbourhood (paper: 1).
    pub dmax: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Relative log-likelihood improvement below which EM stops.
    pub tol: f64,
}

impl Default for EmConfig {
    fn default() -> EmConfig {
        EmConfig { dmax: 1, max_iters: 60, tol: 1e-7 }
    }
}

/// Result of an EM run.
#[derive(Debug, Clone)]
pub struct EmResult {
    /// Estimated expected read attempts `T_l`, parallel to the spectrum.
    pub t: Vec<f64>,
    /// Log-likelihood (up to an additive constant) after each iteration.
    pub loglik_trace: Vec<f64>,
    /// Iterations actually run.
    pub iterations: usize,
}

/// EM state at an iteration boundary — the unit `redeem-detect
/// --checkpoint-dir` persists every N iterations.
///
/// The EM update reads nothing but `t`, `prev_ll` and the iteration count,
/// so resuming [`Redeem::run_resumable`] from any checkpointed state is
/// *exactly* equivalent to never having stopped: the remaining iterations
/// compute bit-identical `T` values (all state round-trips through
/// `f64::to_bits`). `converged` distinguishes a finished run from a
/// mid-flight one, so resuming a converged state runs zero iterations
/// instead of overshooting the tolerance check.
#[derive(Debug, Clone, PartialEq)]
pub struct EmState {
    /// Current `T_l` estimates, parallel to the spectrum.
    pub t: Vec<f64>,
    /// Log-likelihood of the previous iteration (`-inf` before the first).
    pub prev_ll: f64,
    /// Log-likelihood after each completed iteration.
    pub loglik_trace: Vec<f64>,
    /// Iterations completed so far.
    pub iterations: usize,
    /// Whether the tolerance check has already fired.
    pub converged: bool,
}

impl EmState {
    /// The EM starting point: `T = Y`.
    pub fn initial(y: &[f64]) -> EmState {
        EmState {
            t: y.to_vec(),
            prev_ll: f64::NEG_INFINITY,
            loglik_trace: Vec::new(),
            iterations: 0,
            converged: false,
        }
    }

    /// Finish this state into a result.
    pub fn into_result(self) -> EmResult {
        EmResult { t: self.t, loglik_trace: self.loglik_trace, iterations: self.iterations }
    }
}

/// The REDEEM model: spectrum, misread graph and edge weights.
pub struct Redeem {
    spectrum: KSpectrum,
    /// CSR offsets into `nbr` / weight arrays; node `l`'s edges are
    /// `edges[offsets[l]..offsets[l+1]]`. The self-loop is always first.
    offsets: Vec<u32>,
    /// Neighbour node ids (self first).
    nbr: Vec<u32>,
    /// Row-normalised `pe(l → nbr)` — probability node `l` is misread as the
    /// neighbour ("outgoing").
    w_out: Vec<f64>,
    /// Row-normalised `pe(nbr → l)` — probability the neighbour is misread
    /// as node `l` ("incoming").
    w_in: Vec<f64>,
    y: Vec<f64>,
}

impl Redeem {
    /// Build the model from reads: spectrum, Hamming neighbourhoods (via the
    /// masked-replica index) and normalised misread weights.
    pub fn new(reads: &[Read], k: usize, model: &KmerErrorModel, dmax: usize) -> Redeem {
        assert_eq!(model.k(), k, "error model k must match spectrum k");
        let spectrum = KSpectrum::from_reads(reads, k);
        Self::from_spectrum(spectrum, model, dmax)
    }

    /// Build from a precomputed spectrum.
    pub fn from_spectrum(spectrum: KSpectrum, model: &KmerErrorModel, dmax: usize) -> Redeem {
        let n = spectrum.len();
        let chunks = if dmax == 1 { spectrum.k() } else { (dmax + 4).min(spectrum.k()) };
        let index =
            NeighborIndex::build(&spectrum, dmax, NeighborStrategy::MaskedReplicas { chunks });
        let adjacency = index.full_adjacency(dmax);

        // Raw (un-normalised) weights, then row sums, then two normalised
        // directed weight arrays.
        let kmers = spectrum.kmers();
        let diags: Vec<f64> = kmers.par_iter().map(|&v| model.diag(v)).collect();

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut total = 0u32;
        for a in &adjacency {
            total += 1 + a.len() as u32; // self + neighbours
            offsets.push(total);
        }
        let mut nbr = Vec::with_capacity(total as usize);
        for (l, a) in adjacency.iter().enumerate() {
            nbr.push(l as u32); // self-loop first
            nbr.extend_from_slice(a);
        }

        // Row sums for normalisation: rowsum_l = Σ_{m ∈ row l} pe(l → m).
        let rowsums: Vec<f64> = (0..n)
            .into_par_iter()
            .map(|l| {
                let (s, e) = (offsets[l] as usize, offsets[l + 1] as usize);
                nbr[s..e]
                    .iter()
                    .map(|&m| model.pe_with_diag(kmers[l], kmers[m as usize], diags[l]))
                    .sum()
            })
            .collect();

        let mut w_out = vec![0.0f64; total as usize];
        let mut w_in = vec![0.0f64; total as usize];
        let rows: Vec<(usize, usize)> =
            (0..n).map(|l| (offsets[l] as usize, offsets[l + 1] as usize)).collect();
        let results: Vec<(usize, Vec<f64>, Vec<f64>)> = rows
            .par_iter()
            .enumerate()
            .map(|(l, &(s, e))| {
                let mut out_row = Vec::with_capacity(e - s);
                let mut in_row = Vec::with_capacity(e - s);
                for &m in &nbr[s..e] {
                    let m = m as usize;
                    out_row.push(model.pe_with_diag(kmers[l], kmers[m], diags[l]) / rowsums[l]);
                    in_row.push(model.pe_with_diag(kmers[m], kmers[l], diags[m]) / rowsums[m]);
                }
                (s, out_row, in_row)
            })
            .collect();
        for (s, out_row, in_row) in results {
            w_out[s..s + out_row.len()].copy_from_slice(&out_row);
            w_in[s..s + in_row.len()].copy_from_slice(&in_row);
        }

        let y: Vec<f64> = spectrum.counts().iter().map(|&c| c as f64).collect();
        Redeem { spectrum, offsets, nbr, w_out, w_in, y }
    }

    /// The spectrum the model was built over.
    pub fn spectrum(&self) -> &KSpectrum {
        &self.spectrum
    }

    /// The raw CSR arrays `(offsets, nbr, w_out, w_in)` for checkpoint
    /// serialization — inverse of [`Redeem::from_csr_parts`].
    pub fn csr_parts(&self) -> (&[u32], &[u32], &[f64], &[f64]) {
        (&self.offsets, &self.nbr, &self.w_out, &self.w_in)
    }

    /// Reassemble a model from checkpointed CSR parts, re-validating the
    /// structural invariants (offset monotonicity, in-range neighbour ids,
    /// self-loop-first rows, parallel weight arrays) so a corrupt
    /// checkpoint errors instead of producing a model that panics or
    /// silently computes garbage mid-EM.
    pub fn from_csr_parts(
        spectrum: KSpectrum,
        offsets: Vec<u32>,
        nbr: Vec<u32>,
        w_out: Vec<f64>,
        w_in: Vec<f64>,
    ) -> ngs_core::Result<Redeem> {
        use ngs_core::NgsError;
        let n = spectrum.len();
        let bad = |msg: String| Err(NgsError::MalformedRecord(format!("redeem CSR: {msg}")));
        if offsets.len() != n + 1 || offsets.first() != Some(&0) {
            return bad(format!("{} offsets for {n} nodes", offsets.len()));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return bad("offsets not monotone".into());
        }
        if *offsets.last().unwrap() as usize != nbr.len()
            || w_out.len() != nbr.len()
            || w_in.len() != nbr.len()
        {
            return bad(format!(
                "edge arrays disagree: last offset {}, |nbr|={}, |w_out|={}, |w_in|={}",
                offsets.last().unwrap(),
                nbr.len(),
                w_out.len(),
                w_in.len()
            ));
        }
        if nbr.iter().any(|&m| m as usize >= n) {
            return bad("neighbour id out of range".into());
        }
        for l in 0..n {
            let s = offsets[l] as usize;
            if s == offsets[l + 1] as usize || nbr[s] != l as u32 {
                return bad(format!("row {l} does not start with its self-loop"));
            }
        }
        let y: Vec<f64> = spectrum.counts().iter().map(|&c| c as f64).collect();
        Ok(Redeem { spectrum, offsets, nbr, w_out, w_in, y })
    }

    /// Observed counts `Y` as floats (parallel to the spectrum).
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// CSR offset of node `l`'s edge row (valid for `l ∈ 0..=len`).
    pub fn offset_of(&self, l: usize) -> usize {
        self.offsets[l] as usize
    }

    /// The raw CSR neighbour array (self-loop first within each row).
    pub fn neighbors_raw(&self) -> &[u32] {
        &self.nbr
    }

    /// Average neighbourhood size (including self) — a diagnostic.
    pub fn average_degree(&self) -> f64 {
        if self.spectrum.is_empty() {
            return 0.0;
        }
        self.nbr.len() as f64 / self.spectrum.len() as f64
    }

    /// Run the EM, returning `T` estimates.
    pub fn run(&self, cfg: &EmConfig) -> EmResult {
        self.run_observed(cfg, &ngs_observe::Collector::disabled())
    }

    /// [`Redeem::run`] with observability: each EM iteration is timed under
    /// the `redeem.em.iteration` span, per-iteration log-likelihood
    /// improvements feed the `redeem.em.loglik_delta` histogram (log₂
    /// buckets of ⌈ΔLL⌉), and the final log-likelihood lands in the
    /// `redeem.em.final_loglik` gauge.
    pub fn run_observed(&self, cfg: &EmConfig, collector: &ngs_observe::Collector) -> EmResult {
        self.run_resumable(cfg, None, 0, &mut |_| true, collector)
    }

    /// [`Redeem::run_observed`] with checkpoint hooks: start from `resume`
    /// (or the `T = Y` initial state), and every `checkpoint_every`
    /// completed iterations hand the current [`EmState`] to
    /// `on_checkpoint`. The hook returning `false` aborts the run at that
    /// boundary and returns the state so far — the crash-injection tests
    /// use this to kill the EM at an exact iteration; real callers persist
    /// the state and return `true`. `checkpoint_every == 0` disables the
    /// hook entirely.
    pub fn run_resumable(
        &self,
        cfg: &EmConfig,
        resume: Option<EmState>,
        checkpoint_every: usize,
        on_checkpoint: &mut dyn FnMut(&EmState) -> bool,
        collector: &ngs_observe::Collector,
    ) -> EmResult {
        let n = self.spectrum.len();
        let mut state = resume.unwrap_or_else(|| EmState::initial(&self.y));
        let start_iterations = state.iterations;
        while !state.converged && state.iterations < cfg.max_iters {
            state.iterations += 1;
            let mut iter_span =
                collector.span_with_threads("redeem.em.iteration", rayon::current_num_threads());
            // Denominators: denom_m = Σ_{l ∈ row m} T_l · pe(l → m), which
            // in CSR terms is a gather over row m with incoming weights.
            let t = &state.t;
            let denom: Vec<f64> = (0..n)
                .into_par_iter()
                .map(|m| {
                    let (s, e) = (self.offsets[m] as usize, self.offsets[m + 1] as usize);
                    self.nbr[s..e]
                        .iter()
                        .zip(&self.w_in[s..e])
                        .map(|(&l, &w)| t[l as usize] * w)
                        .sum::<f64>()
                        .max(1e-300)
                })
                .collect();

            // Log-likelihood (up to constant): Σ_m Y_m ln denom_m.
            let ll: f64 = (0..n).into_par_iter().map(|m| self.y[m] * denom[m].ln()).sum();
            state.loglik_trace.push(ll);

            // M-step: T_l = Σ_{m ∈ row l} Y_m · T_l · pe(l→m) / denom_m.
            let t_new: Vec<f64> = (0..n)
                .into_par_iter()
                .map(|l| {
                    let (s, e) = (self.offsets[l] as usize, self.offsets[l + 1] as usize);
                    let tl = t[l];
                    self.nbr[s..e]
                        .iter()
                        .zip(&self.w_out[s..e])
                        .map(|(&m, &w)| {
                            let m = m as usize;
                            self.y[m] * tl * w / denom[m]
                        })
                        .sum()
                })
                .collect();
            state.t = t_new;
            // Report the parallelism the E/M gathers actually got, not
            // the pool size (they may have run sequentially).
            iter_span.set_threads(rayon::last_threads_used());

            if state.prev_ll.is_finite() {
                collector
                    .record("redeem.em.loglik_delta", (ll - state.prev_ll).abs().ceil() as u64);
                let rel = (ll - state.prev_ll).abs() / (state.prev_ll.abs().max(1.0));
                if rel < cfg.tol {
                    state.converged = true;
                }
            }
            if !state.converged {
                state.prev_ll = ll;
            }
            if checkpoint_every > 0
                && !state.converged
                && state.iterations.is_multiple_of(checkpoint_every)
                && !on_checkpoint(&state)
            {
                break;
            }
        }
        // Count only the iterations run in *this* session, so a resumed
        // run's BENCH report reflects the work it actually did.
        collector.add("redeem.em.iterations", (state.iterations - start_iterations) as u64);
        if let Some(&ll) = state.loglik_trace.last() {
            collector.gauge("redeem.em.final_loglik", ll);
        }
        state.into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngs_simulate::{simulate_reads, ErrorModel, GenomeSpec, ReadSimConfig, RepeatClass};

    fn build(
        genome_len: usize,
        repeats: Vec<RepeatClass>,
        pe: f64,
        seed: u64,
    ) -> (Vec<u8>, Redeem, KmerErrorModel, ngs_simulate::SimulatedReads) {
        let g = GenomeSpec::with_repeats(genome_len, repeats).generate(31).seq;
        let cfg = ReadSimConfig {
            read_len: 36,
            n_reads: genome_len * 50 / 36,
            error_model: ErrorModel::uniform(36, pe),
            both_strands: false,
            with_quals: false,
            n_rate: 0.0,
            seed,
        };
        let sim = simulate_reads(&g, &cfg);
        let k = 9;
        let km = KmerErrorModel::uniform(k, pe);
        let redeem = Redeem::new(&sim.reads, k, &km, 1);
        (g, redeem, km, sim)
    }

    #[test]
    fn loglik_nondecreasing() {
        let (_, redeem, _, _) = build(4_000, vec![], 0.01, 1);
        let res = redeem.run(&EmConfig { dmax: 1, max_iters: 20, tol: 0.0 });
        for w in res.loglik_trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "loglik decreased: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn total_mass_preserved() {
        // Σ T_l stays equal to Σ Y_l: the M-step redistributes counts.
        let (_, redeem, _, _) = build(4_000, vec![], 0.02, 2);
        let res = redeem.run(&EmConfig::default());
        let sum_y: f64 = redeem.y().iter().sum();
        let sum_t: f64 = res.t.iter().sum();
        assert!((sum_y - sum_t).abs() / sum_y < 1e-9, "Y={sum_y} T={sum_t}");
    }

    #[test]
    fn error_kmers_get_depressed_t() {
        let (g, redeem, _, _) = build(4_000, vec![], 0.01, 3);
        let res = redeem.run(&EmConfig::default());
        // Split kmers by genomic truth; average T of error kmers must be far
        // below average T of genomic kmers, and more separated than Y.
        let genomic = genomic_flags(&g, redeem.spectrum());
        let (mut tg, mut te, mut yg, mut ye) = (0.0, 0.0, 0.0, 0.0);
        let (mut ng, mut ne) = (0usize, 0usize);
        for (i, &is_g) in genomic.iter().enumerate() {
            if is_g {
                tg += res.t[i];
                yg += redeem.y()[i];
                ng += 1;
            } else {
                te += res.t[i];
                ye += redeem.y()[i];
                ne += 1;
            }
        }
        assert!(ne > 0 && ng > 0);
        let (tg, te, yg, ye) = (tg / ng as f64, te / ne as f64, yg / ng as f64, ye / ne as f64);
        // At maximum likelihood a singleton error k-mer keeps T close to
        // its count (the neighbourhood cannot explain a whole observation),
        // but T must still drop below Y and widen the genomic/error ratio.
        assert!(te < ye, "error-kmer T {te} should drop below Y {ye}");
        assert!(tg / te > yg / ye, "T separation should beat Y separation");
    }

    #[test]
    fn repeat_kmer_t_tracks_multiplicity() {
        // A 10-copy repeat: its kmers' T should be ~10x the unique baseline.
        let (g, redeem, _, _) =
            build(6_000, vec![RepeatClass { length: 300, multiplicity: 10 }], 0.005, 4);
        let res = redeem.run(&EmConfig::default());
        let genomic = genomic_flags(&g, redeem.spectrum());
        // Baseline: median T of genomic kmers.
        let mut tg: Vec<f64> =
            genomic.iter().enumerate().filter(|(_, &f)| f).map(|(i, _)| res.t[i]).collect();
        tg.sort_unstable_by(f64::total_cmp);
        let median = tg[tg.len() / 2];
        let max = *tg.last().unwrap();
        assert!(max > 5.0 * median, "repeat kmers should stand out: max={max} median={median}");
    }

    /// Truth flags: does each spectrum k-mer occur in the genome (fwd or rc)?
    fn genomic_flags(genome: &[u8], spectrum: &KSpectrum) -> Vec<bool> {
        use ngs_core::hash::FxHashSet;
        let k = spectrum.k();
        let mut set: FxHashSet<u64> = FxHashSet::default();
        ngs_kmer::for_each_kmer(genome, k, |_, v| {
            set.insert(v);
            set.insert(ngs_kmer::packed::reverse_complement_packed(v, k));
        });
        spectrum.kmers().iter().map(|v| set.contains(v)).collect()
    }

    #[test]
    fn average_degree_reported() {
        let (_, redeem, _, _) = build(2_000, vec![], 0.01, 5);
        assert!(redeem.average_degree() >= 1.0);
    }

    /// Resume equivalence: killing the EM at any checkpoint boundary and
    /// resuming from the captured state must produce bit-identical `T`
    /// values and the same iteration count as an uninterrupted run.
    #[test]
    fn resume_from_any_checkpoint_is_bit_identical() {
        let (_, redeem, _, _) = build(3_000, vec![], 0.01, 7);
        // tol 0 never converges, so every kill point is reached.
        let cfg = EmConfig { dmax: 1, max_iters: 12, tol: 0.0 };
        let collector = ngs_observe::Collector::disabled();
        let full = redeem.run_resumable(&cfg, None, 0, &mut |_| true, &collector);
        assert_eq!(full.iterations, 12);

        for kill_after in [2usize, 4, 6, 10] {
            // Run until the checkpoint at `kill_after` iterations, abort.
            let mut captured: Option<EmState> = None;
            let partial = redeem.run_resumable(
                &cfg,
                None,
                kill_after,
                &mut |s| {
                    if captured.is_none() {
                        captured = Some(s.clone());
                        false // simulate the process dying here
                    } else {
                        true
                    }
                },
                &collector,
            );
            let state = captured.expect("checkpoint hook must fire");
            assert_eq!(partial.iterations, kill_after.min(full.iterations));
            if state.iterations >= full.iterations {
                continue; // converged before the kill point
            }
            // Resume and compare bit-for-bit.
            let resumed = redeem.run_resumable(&cfg, Some(state), 0, &mut |_| true, &collector);
            assert_eq!(resumed.iterations, full.iterations, "kill_after={kill_after}");
            assert_eq!(resumed.loglik_trace.len(), full.loglik_trace.len());
            for (a, b) in resumed.t.iter().zip(&full.t) {
                assert_eq!(a.to_bits(), b.to_bits(), "T diverged after resume");
            }
            for (a, b) in resumed.loglik_trace.iter().zip(&full.loglik_trace) {
                assert_eq!(a.to_bits(), b.to_bits(), "trace diverged after resume");
            }
        }
    }

    /// A state captured *after* convergence resumes to zero extra work.
    #[test]
    fn resuming_converged_state_runs_no_iterations() {
        let (_, redeem, _, _) = build(2_000, vec![], 0.01, 8);
        let cfg = EmConfig { dmax: 1, max_iters: 40, tol: 1e-4 };
        let collector = ngs_observe::Collector::disabled();
        let full = redeem.run_resumable(&cfg, None, 0, &mut |_| true, &collector);
        assert!(full.iterations < 40, "should converge before the cap");
        let finished = EmState {
            t: full.t.clone(),
            prev_ll: f64::NEG_INFINITY,
            loglik_trace: full.loglik_trace.clone(),
            iterations: full.iterations,
            converged: true,
        };
        let c2 = ngs_observe::Collector::new();
        let resumed = redeem.run_resumable(&cfg, Some(finished), 0, &mut |_| true, &c2);
        assert_eq!(resumed.iterations, full.iterations);
        assert_eq!(c2.report("redeem").counter("redeem.em.iterations"), 0);
        for (a, b) in resumed.t.iter().zip(&full.t) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn observed_run_reports_iteration_spans() {
        let (_, redeem, _, _) = build(2_000, vec![], 0.01, 6);
        let collector = ngs_observe::Collector::new();
        let res = redeem.run_observed(&EmConfig { dmax: 1, max_iters: 8, tol: 0.0 }, &collector);
        let report = collector.report("redeem");
        let span = report.span("redeem.em.iteration").expect("iteration span");
        assert_eq!(span.count, res.iterations as u64);
        assert_eq!(report.counter("redeem.em.iterations"), res.iterations as u64);
        assert!(report.gauges.contains_key("redeem.em.final_loglik"));
        // The plain entry point must not record anything.
        let silent = ngs_observe::Collector::disabled();
        redeem.run_observed(&EmConfig::default(), &silent);
        assert!(silent.report("redeem").spans.is_empty());
    }
}
