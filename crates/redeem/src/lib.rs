//! `redeem` — Read Error DEtection and correction via Expectation
//! Maximization (Chapter 3).
//!
//! REDEEM targets genomes where repeats make observed k-mer counts `Y_l`
//! unreliable evidence: "an erroneous kmer may appear at a moderate
//! frequency if it has few nucleotide differences from one or more valid
//! kmers that have a high frequency of occurrence in the genome." Instead
//! of thresholding `Y`, REDEEM computes a maximum-likelihood estimate of
//! `T_l`, the expected number of *attempts* to read k-mer `x_l` — the
//! quantity actually proportional to genomic occurrence — via an EM
//! algorithm over the k-mer misread graph (§3.2):
//!
//! * [`error_model`] — the position-specific misread probabilities
//!   `q_i(α,β)` in k-mer coordinates, with the four presets of §3.4.2
//!   (tIED / wIED / tUED / wUED);
//! * [`em`] — the sparse EM over observed k-mers within Hamming distance
//!   `d_max`, with row-normalised misread matrix `P_e`;
//! * [`threshold`] — §3.7's mixture model (Gamma + G Normals + Uniform) fit
//!   by a second EM with BIC model selection, yielding a data-driven
//!   detection threshold;
//! * [`correct`] — §3.3's per-base posterior correction, averaging
//!   `π_t(b)` across the k-mers covering each read position.

pub mod correct;
pub mod em;
pub mod error_model;
pub mod snapshot;
pub mod threshold;

pub use correct::correct_reads;
pub use em::{EmConfig, EmResult, EmState, Redeem};
pub use error_model::KmerErrorModel;
pub use threshold::{
    estimate_genome_length, fit_threshold_model, fit_threshold_model_observed, MixtureFit,
};
