//! `ngs-assembly` — a minimal de Bruijn unitig assembler.
//!
//! The dissertation motivates error correction almost entirely through
//! assembly: de Bruijn graphs are "de facto models for building short read
//! genome assemblers … [but the graph size] becomes the limiting factor for
//! scaling to large genomes due to … an overwhelming number of spurious
//! kmers that do not belong to the target genome. In addition, these
//! artifacts lead to a higher chance of mis-assemblies. Therefore, detecting
//! or correcting errors in the data pre-assembly becomes indispensable"
//! (§1.1). Chapter 5 proposes the resulting yardstick: "it would also be
//! interesting to see the association between the assembly results and the
//! ratio of TP/FP".
//!
//! This crate provides exactly that downstream validator: a de Bruijn graph
//! over the solid k-mers of a read set, compressed into **unitigs**
//! (maximal non-branching paths), with the standard contiguity statistics
//! (unitig count, N50, max length) and a genome-recovery measure. The
//! `exp_assembly` experiment assembles raw vs corrected reads to show the
//! paper's motivating effect end to end.

use ngs_core::hash::FxHashSet;
use ngs_core::Read;
use ngs_kmer::packed::{decode_kmer, reverse_complement_packed, Kmer};
use ngs_kmer::KSpectrum;

/// Assembler parameters.
#[derive(Debug, Clone, Copy)]
pub struct AssemblyParams {
    /// de Bruijn k (node length; `2..=32`).
    pub k: usize,
    /// Solidity filter: k-mers observed fewer than this many times are
    /// dropped before graph construction (the classic spurious-k-mer
    /// defence the paper describes).
    pub min_count: u32,
}

impl AssemblyParams {
    /// Defaults: `k = 21` capped below the read length, `min_count = 2`.
    pub fn recommended(read_len: usize) -> AssemblyParams {
        AssemblyParams { k: 21.min(read_len.saturating_sub(4)).max(5), min_count: 2 }
    }
}

/// An assembled unitig set.
#[derive(Debug, Clone)]
pub struct Assembly {
    /// Unitig sequences (each reported once, in canonical orientation).
    pub unitigs: Vec<Vec<u8>>,
    /// The k used.
    pub k: usize,
}

/// Contiguity statistics of an assembly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssemblyStats {
    /// Number of unitigs.
    pub count: usize,
    /// Total assembled bases.
    pub total_len: usize,
    /// N50: the largest L such that unitigs of length ≥ L cover half the
    /// total assembled bases.
    pub n50: usize,
    /// Longest unitig.
    pub max_len: usize,
}

impl Assembly {
    /// Compute contiguity statistics.
    pub fn stats(&self) -> AssemblyStats {
        let mut lens: Vec<usize> = self.unitigs.iter().map(|u| u.len()).collect();
        lens.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = lens.iter().sum();
        let mut acc = 0usize;
        let mut n50 = 0usize;
        for &l in &lens {
            acc += l;
            if acc * 2 >= total {
                n50 = l;
                break;
            }
        }
        AssemblyStats {
            count: lens.len(),
            total_len: total,
            n50,
            max_len: lens.first().copied().unwrap_or(0),
        }
    }

    /// Fraction of the reference genome's k-mers present in the unitigs —
    /// a simple completeness measure (strand-insensitive).
    pub fn genome_recovery(&self, genome: &[u8]) -> f64 {
        let k = self.k;
        let mut asm: FxHashSet<Kmer> = FxHashSet::default();
        for u in &self.unitigs {
            ngs_kmer::for_each_kmer(u, k, |_, v| {
                asm.insert(v);
                asm.insert(reverse_complement_packed(v, k));
            });
        }
        let mut total = 0u64;
        let mut hit = 0u64;
        ngs_kmer::for_each_kmer(genome, k, |_, v| {
            total += 1;
            hit += u64::from(asm.contains(&v));
        });
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    }
}

/// A solid-k-mer de Bruijn graph with unitig compression.
struct Graph {
    k: usize,
    solid: FxHashSet<Kmer>,
}

impl Graph {
    fn successors(&self, v: Kmer) -> Vec<Kmer> {
        let mask: u64 = if self.k == 32 { u64::MAX } else { (1u64 << (2 * self.k)) - 1 };
        (0..4u64).map(|b| ((v << 2) | b) & mask).filter(|s| self.solid.contains(s)).collect()
    }

    fn predecessors(&self, v: Kmer) -> Vec<Kmer> {
        (0..4u64)
            .map(|b| (v >> 2) | (b << (2 * (self.k - 1))))
            .filter(|p| self.solid.contains(p))
            .collect()
    }
}

/// Assemble `reads` into unitigs.
pub fn assemble(reads: &[Read], params: AssemblyParams) -> Assembly {
    let k = params.k;
    assert!((2..=32).contains(&k));
    let spectrum = KSpectrum::from_reads_both_strands(reads, k);
    let solid: FxHashSet<Kmer> =
        spectrum.iter().filter(|&(_, c)| c >= params.min_count).map(|(v, _)| v).collect();
    let graph = Graph { k, solid };

    let mut visited: FxHashSet<Kmer> = FxHashSet::default();
    let mut unitigs: FxHashSet<Vec<u8>> = FxHashSet::default();

    // Walk maximal non-branching paths. Start points: k-mers whose
    // predecessor set is not a single unbranching edge (path heads), then a
    // cycle sweep for anything untouched.
    let starts: Vec<Kmer> = graph
        .solid
        .iter()
        .copied()
        .filter(|&v| {
            let preds = graph.predecessors(v);
            preds.len() != 1 || graph.successors(preds[0]).len() != 1
        })
        .collect();
    for start in starts {
        if visited.contains(&start) {
            continue;
        }
        let unitig = walk(&graph, start, &mut visited);
        insert_canonical(&mut unitigs, unitig);
    }
    // Isolated cycles (no head): sweep leftovers.
    let leftovers: Vec<Kmer> =
        graph.solid.iter().copied().filter(|v| !visited.contains(v)).collect();
    for v in leftovers {
        if visited.contains(&v) {
            continue;
        }
        let unitig = walk(&graph, v, &mut visited);
        insert_canonical(&mut unitigs, unitig);
    }

    Assembly { unitigs: unitigs.into_iter().collect(), k }
}

/// Extend a unitig forward from `start`, marking nodes visited.
fn walk(graph: &Graph, start: Kmer, visited: &mut FxHashSet<Kmer>) -> Vec<u8> {
    let k = graph.k;
    let mut seq = decode_kmer(start, k);
    visited.insert(start);
    visited.insert(reverse_complement_packed(start, k));
    let mut cur = start;
    loop {
        let succs = graph.successors(cur);
        if succs.len() != 1 {
            break;
        }
        let next = succs[0];
        if graph.predecessors(next).len() != 1 || visited.contains(&next) {
            break;
        }
        visited.insert(next);
        visited.insert(reverse_complement_packed(next, k));
        seq.push(ngs_core::alphabet::decode_base((next & 3) as u8));
        cur = next;
    }
    seq
}

/// Store a unitig in canonical orientation (lexicographically smaller of
/// the sequence and its reverse complement), deduplicating strand twins.
fn insert_canonical(unitigs: &mut FxHashSet<Vec<u8>>, unitig: Vec<u8>) {
    let rc = ngs_core::alphabet::reverse_complement(&unitig);
    unitigs.insert(if unitig <= rc { unitig } else { rc });
}

/// Assemble and immediately report statistics (convenience).
pub fn assemble_stats(reads: &[Read], params: AssemblyParams) -> AssemblyStats {
    assemble(reads, params).stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngs_simulate::{simulate_reads, ErrorModel, GenomeSpec, ReadSimConfig};

    fn reads_from(genome: &[u8], pe: f64, coverage: f64, seed: u64) -> Vec<Read> {
        let cfg = ReadSimConfig {
            read_len: 36,
            n_reads: (genome.len() as f64 * coverage / 36.0) as usize,
            error_model: ErrorModel::uniform(36, pe),
            both_strands: true,
            with_quals: false,
            n_rate: 0.0,
            seed,
        };
        simulate_reads(genome, &cfg).reads
    }

    #[test]
    fn clean_reads_assemble_contiguously() {
        let genome = GenomeSpec::uniform(5_000).generate(1).seq;
        let reads = reads_from(&genome, 0.0, 40.0, 2);
        let asm = assemble(&reads, AssemblyParams { k: 17, min_count: 2 });
        let stats = asm.stats();
        assert!(stats.count < 20, "expected few unitigs, got {stats:?}");
        assert!(stats.n50 > 500, "{stats:?}");
        assert!(asm.genome_recovery(&genome) > 0.95);
    }

    #[test]
    fn errors_fragment_the_graph_and_correction_heals_it() {
        // The dissertation's core motivation, end to end.
        let genome = GenomeSpec::uniform(6_000).generate(3).seq;
        let clean = reads_from(&genome, 0.0, 50.0, 4);
        let noisy = reads_from(&genome, 0.02, 50.0, 4);
        let params = AssemblyParams { k: 17, min_count: 2 };

        let clean_stats = assemble_stats(&clean, params);
        let noisy_stats = assemble_stats(&noisy, params);
        assert!(
            noisy_stats.n50 < clean_stats.n50,
            "errors must fragment: clean {clean_stats:?} noisy {noisy_stats:?}"
        );

        // Correct with Reptile, reassemble: contiguity must improve.
        let noisy_reads: Vec<Read> = noisy.clone();
        let rp = reptile::ReptileParams::from_data(&noisy_reads, genome.len());
        let (corrected, _) = reptile::Reptile::run(&noisy_reads, rp);
        let corrected_stats = assemble_stats(&corrected, params);
        assert!(
            corrected_stats.n50 > noisy_stats.n50,
            "correction must improve N50: corrected {corrected_stats:?} noisy {noisy_stats:?}"
        );
    }

    #[test]
    fn min_count_filters_spurious_kmers() {
        let genome = GenomeSpec::uniform(4_000).generate(5).seq;
        let noisy = reads_from(&genome, 0.02, 50.0, 6);
        let no_filter = assemble(&noisy, AssemblyParams { k: 17, min_count: 1 });
        let filtered = assemble(&noisy, AssemblyParams { k: 17, min_count: 3 });
        // The filter removes most error-induced branching.
        assert!(
            filtered.stats().count < no_filter.stats().count / 2,
            "filter: {:?} vs {:?}",
            filtered.stats(),
            no_filter.stats()
        );
    }

    #[test]
    fn strand_twins_deduplicated() {
        // A single unique sequence: both strands must collapse into one
        // unitig.
        let genome = GenomeSpec::uniform(2_000).generate(7).seq;
        let reads = reads_from(&genome, 0.0, 60.0, 8);
        let asm = assemble(&reads, AssemblyParams { k: 15, min_count: 2 });
        // No unitig should equal another's reverse complement.
        for (i, u) in asm.unitigs.iter().enumerate() {
            let rc = ngs_core::alphabet::reverse_complement(u);
            for (j, w) in asm.unitigs.iter().enumerate() {
                if i != j {
                    assert_ne!(w, &rc, "strand twin not deduplicated");
                }
            }
        }
    }

    #[test]
    fn n50_definition() {
        let asm = Assembly { unitigs: vec![vec![b'A'; 50], vec![b'A'; 30], vec![b'A'; 20]], k: 15 };
        let s = asm.stats();
        assert_eq!(s.count, 3);
        assert_eq!(s.total_len, 100);
        assert_eq!(s.n50, 50);
        assert_eq!(s.max_len, 50);
    }

    #[test]
    fn empty_input() {
        let asm = assemble(&[], AssemblyParams { k: 15, min_count: 1 });
        let s = asm.stats();
        assert_eq!(s.count, 0);
        assert_eq!(s.n50, 0);
        assert_eq!(asm.genome_recovery(b"ACGTACGTACGTACGTACGT"), 0.0);
    }
}
