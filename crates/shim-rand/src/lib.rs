//! Offline drop-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API surface it needs as a local crate: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool`. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic for a given seed, with
//! statistical quality comparable to `StdRng` for the simulation and
//! test workloads here (which only assert distributional properties,
//! never exact streams).

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from uniform bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `bits`.
    fn from_bits(bits: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for f64 {
    fn from_bits(bits: &mut dyn FnMut() -> u64) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_bits(bits: &mut dyn FnMut() -> u64) -> f32 {
        (bits() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_bits(bits: &mut dyn FnMut() -> u64) -> bool {
        bits() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn from_bits(bits: &mut dyn FnMut() -> u64) -> $t {
                bits() as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler. The per-type sampling lives here so the
/// [`SampleRange`] impls below can be single blanket impls over `T`;
/// separate per-type range impls would leave `gen_range`'s return type
/// ambiguous in arithmetic contexts like `38.0 + rng.gen_range(-3.0..3.0)`
/// (this mirrors `rand`'s own structure).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, bits: &mut dyn FnMut() -> u64) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, bits: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {
        $(impl SampleUniform for $t {
            fn sample_half_open(lo: $t, hi: $t, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide);
                lo.wrapping_add((bits() as $wide % span) as $t)
            }
            fn sample_inclusive(lo: $t, hi: $t, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return bits() as $t;
                }
                lo.wrapping_add((bits() as $wide % span) as $t)
            }
        })*
    };
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {
        $(impl SampleUniform for $t {
            fn sample_half_open(lo: $t, hi: $t, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                lo + (hi - lo) * <$t as Standard>::from_bits(bits)
            }
            fn sample_inclusive(lo: $t, hi: $t, bits: &mut dyn FnMut() -> u64) -> $t {
                lo + (hi - lo) * <$t as Standard>::from_bits(bits)
            }
        })*
    };
}

impl_sample_uniform_float!(f32, f64);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample(self, bits: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, bits: &mut dyn FnMut() -> u64) -> T {
        T::sample_half_open(self.start, self.end, bits)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, bits: &mut dyn FnMut() -> u64) -> T {
        T::sample_inclusive(*self.start(), *self.end(), bits)
    }
}

/// User-facing convenience methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(&mut || self.next_u64())
    }

    /// Uniform value in `range`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(&mut || self.next_u64())
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Named generators (only [`StdRng`] is provided).

    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 — the offline stand-in for
    /// `rand::rngs::StdRng`. Not cryptographically secure (neither use
    /// here needs it).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..64).filter(|_| a.gen::<u64>() == c.gen::<u64>()).count();
        assert!(same < 4, "different seeds should diverge");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u8..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "{hits}");
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
