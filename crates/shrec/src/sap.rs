//! The Spectrum Alignment Problem (SAP) baseline corrector.
//!
//! §1.2 describes the k-spectrum lineage Reptile descends from: "in a given
//! dataset, a kmer is considered to be *solid* if it occurs over M number of
//! times, and *weak* otherwise … Reads containing insolid kmers are
//! converted using a minimum number of edit operations so that they contain
//! only solid kmers post-correction" (Pevzner & Tang 2001; exact DP in
//! Chaisson et al. 2004). "After observing that errors in short reads such
//! as Illumina reads are dominantly caused by substitutions, SAP formulation
//! was adapted to consider only Hamming distance [Chaisson et al. 2009] and
//! heuristics were applied in the following manner: in each read, if a base
//! change can increase the solid kmers to a prescribed amount, then it is
//! applied."
//!
//! This module implements that substitution-only greedy: per read, repeatedly
//! pick the single-base substitution that maximally increases the number of
//! solid k-mer windows, until the read is all-solid or no substitution
//! helps. It serves as the third comparator in the ablation benchmarks.

use ngs_core::hash::FxHashSet;
use ngs_core::{alphabet, Read};
use ngs_kmer::packed::{reverse_complement_packed, Kmer};
use ngs_kmer::KSpectrum;
use rayon::prelude::*;

/// Parameters for the SAP greedy corrector.
#[derive(Debug, Clone, Copy)]
pub struct SapParams {
    /// k-mer length.
    pub k: usize,
    /// Solidity threshold `M`: a k-mer is solid when it occurs `>= m` times
    /// (counting both strands).
    pub m: u32,
    /// Maximum substitutions applied per read.
    pub max_subs_per_read: usize,
}

impl SapParams {
    /// Defaults: `k = ceil(log4 |G|)`, `M = 4`, at most 4 substitutions.
    pub fn recommended(genome_len: usize) -> SapParams {
        let k = ((genome_len.max(4) as f64).log(4.0).ceil() as usize).clamp(10, 16);
        SapParams { k, m: 4, max_subs_per_read: 4 }
    }
}

/// The SAP greedy corrector.
pub struct SapCorrector {
    params: SapParams,
    solid: FxHashSet<Kmer>,
}

impl SapCorrector {
    /// Build the solid-k-mer set from the read set.
    pub fn build(reads: &[Read], params: SapParams) -> SapCorrector {
        let spectrum = KSpectrum::from_reads_both_strands(reads, params.k);
        let solid: FxHashSet<Kmer> =
            spectrum.iter().filter(|&(_, c)| c >= params.m).map(|(v, _)| v).collect();
        SapCorrector { params, solid }
    }

    /// Number of solid k-mers in the table.
    pub fn solid_count(&self) -> usize {
        self.solid.len()
    }

    #[inline]
    fn is_solid(&self, v: Kmer) -> bool {
        self.solid.contains(&v) || self.solid.contains(&reverse_complement_packed(v, self.params.k))
    }

    /// Count solid windows of a read.
    fn solid_windows(&self, seq: &[u8]) -> usize {
        let mut n = 0;
        ngs_kmer::for_each_kmer(seq, self.params.k, |_, v| {
            n += usize::from(self.is_solid(v));
        });
        n
    }

    /// Correct one read in place; returns the number of substitutions made.
    pub fn correct_read(&self, read: &mut Read) -> usize {
        let k = self.params.k;
        if read.len() < k {
            return 0;
        }
        let total_windows = read.len() - k + 1;
        let mut subs = 0;
        for _ in 0..self.params.max_subs_per_read {
            let current = self.solid_windows(&read.seq);
            if current == total_windows {
                break; // all-solid already
            }
            // Try every substitution at every position touching a weak
            // window; keep the best improvement.
            let mut best: Option<(usize, u8, usize)> = None;
            for pos in 0..read.len() {
                let original = read.seq[pos];
                for &base in &alphabet::ALPHABET {
                    if base == original {
                        continue;
                    }
                    read.seq[pos] = base;
                    // Only windows covering `pos` change; evaluating the
                    // whole read keeps the code simple at our read lengths.
                    let score = self.solid_windows(&read.seq);
                    if score > current && best.is_none_or(|(_, _, s)| score > s) {
                        best = Some((pos, base, score));
                    }
                }
                read.seq[pos] = original;
            }
            match best {
                Some((pos, base, _)) => {
                    read.seq[pos] = base;
                    subs += 1;
                }
                None => break, // no substitution helps: "unfixable"
            }
        }
        subs
    }

    /// Correct all reads in parallel; returns corrected copies and the
    /// total substitution count.
    pub fn correct(&self, reads: &[Read]) -> (Vec<Read>, u64) {
        let results: Vec<(Read, usize)> = reads
            .par_iter()
            .map(|r| {
                let mut read = r.clone();
                let n = self.correct_read(&mut read);
                (read, n)
            })
            .collect();
        let mut out = Vec::with_capacity(results.len());
        let mut total = 0u64;
        for (read, n) in results {
            total += n as u64;
            out.push(read);
        }
        (out, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngs_eval::evaluate_correction;
    use ngs_simulate::{simulate_reads, ErrorModel, GenomeSpec, ReadSimConfig};

    fn dataset(pe: f64, seed: u64) -> (Vec<u8>, ngs_simulate::SimulatedReads) {
        let g = GenomeSpec::uniform(10_000).generate(3).seq;
        let cfg = ReadSimConfig {
            read_len: 36,
            n_reads: 10_000 * 50 / 36,
            error_model: ErrorModel::uniform(36, pe),
            both_strands: true,
            with_quals: false,
            n_rate: 0.0,
            seed,
        };
        let sim = simulate_reads(&g, &cfg);
        (g, sim)
    }

    #[test]
    fn solid_set_built() {
        let (g, sim) = dataset(0.01, 1);
        let sap = SapCorrector::build(&sim.reads, SapParams::recommended(g.len()));
        assert!(sap.solid_count() > 0);
        // Roughly the genomic k-mer count (both strands).
        assert!(sap.solid_count() < 2 * g.len() + 1000);
    }

    #[test]
    fn corrects_planted_error() {
        let (g, sim) = dataset(0.0, 2);
        let sap = SapCorrector::build(&sim.reads, SapParams::recommended(g.len()));
        let mut read = sim.reads[0].clone();
        let truth = read.seq.clone();
        read.seq[20] = alphabet::complement_base(read.seq[20]);
        let subs = sap.correct_read(&mut read);
        assert_eq!(subs, 1);
        assert_eq!(read.seq, truth);
    }

    #[test]
    fn positive_gain_on_simulated_errors() {
        let (g, sim) = dataset(0.01, 3);
        let sap = SapCorrector::build(&sim.reads, SapParams::recommended(g.len()));
        let (corrected, total) = sap.correct(&sim.reads);
        assert!(total > 0);
        let truths: Vec<Vec<u8>> = sim.truth.iter().map(|t| t.true_seq.clone()).collect();
        let e = evaluate_correction(&sim.reads, &corrected, &truths);
        assert!(e.gain() > 0.4, "gain {} ({e:?})", e.gain());
    }

    #[test]
    fn error_free_reads_untouched() {
        // Seed chosen so the sampled coverage has no dips below the solid
        // threshold; with thin spots SAP "fixes" a few rare-but-correct
        // k-mers, which is expected behaviour, not the property under test.
        let (g, sim) = dataset(0.0, 8);
        let sap = SapCorrector::build(&sim.reads, SapParams::recommended(g.len()));
        let (corrected, total) = sap.correct(&sim.reads);
        assert_eq!(total, 0);
        assert_eq!(corrected, sim.reads);
    }

    #[test]
    fn short_read_noop() {
        let (g, sim) = dataset(0.0, 5);
        let sap = SapCorrector::build(&sim.reads, SapParams::recommended(g.len()));
        let mut tiny = Read::new("t", b"ACGT");
        assert_eq!(sap.correct_read(&mut tiny), 0);
    }
}
