//! `shrec` — reimplementation of the SHREC error corrector (baseline).
//!
//! SHREC (Schröder et al. 2009) is the comparator of Tables 2.3 and 3.4.
//! The original "constructs a generalized suffix trie … using both forward
//! and reverse complementary strands of input reads. For each internal node
//! u, the concatenation of edge labels from the root to u spells a substring
//! s_u …, and the number of times s_u occurs equals the number of leaves of
//! the subtree rooted at u. The expected occurrence of s_u can be computed
//! analytically assuming the reference genome G to be a random string …
//! the sampling of s_u can be considered as a collection of Bernoulli
//! trials, where the mean e = np … and the variance δ = np(1−p). Then, if
//! the observed occurrence of s_u is less than e − αδ, s_u is considered as
//! containing a sequencing error in the last base" (§1.2).
//!
//! A suffix trie truncated at depth `q` carries exactly the same statistics
//! as the table of all `q`-gram counts: a depth-`q` node *is* a `q`-gram,
//! its siblings are the `q`-grams sharing the `(q−1)`-prefix, and the
//! children of its sibling are the `(q+1)`-grams extending it. This
//! reimplementation therefore materialises the trie one level at a time as
//! packed `q`-gram count tables — same statistics and decisions, bounded
//! memory (the trade SHREC's Java implementation famously loses; cf. the
//! out-of-memory entries in Table 2.3). The subtree-identity check when
//! merging a suspicious node into a sibling is approximated by requiring the
//! corrected base's *extension* window to be solid as well.

pub mod sap;

pub use sap::{SapCorrector, SapParams};

use ngs_core::hash::FxHashMap;
use ngs_core::{alphabet, Read};
use ngs_kmer::packed::{encode_kmer, Kmer};
use rayon::prelude::*;

/// Parameters of the SHREC corrector.
#[derive(Debug, Clone)]
pub struct ShrecParams {
    /// (Estimated) genome length `|G|`, used for the expected-count model.
    pub genome_len: usize,
    /// Strictness multiplier `α`: a node is suspicious when its count is
    /// below `e − α·√δ`. The paper notes results "differ greatly with
    /// different α … it is unclear how it should be chosen"; default 2.
    pub alpha: f64,
    /// Trie depths (substring lengths) analysed, shallow to deep.
    pub levels: Vec<usize>,
    /// Correction sweeps; each sweep can fix one more error per read region
    /// ("for read with a high error rate, the above procedures could be
    /// applied for a fixed number of iterations").
    pub iterations: usize,
}

impl ShrecParams {
    /// Sensible defaults for a genome of `genome_len` bases and reads of
    /// `read_len` bases: three levels around `ceil(log4 |G|) + 4`.
    pub fn recommended(genome_len: usize, read_len: usize) -> ShrecParams {
        let q0 = ((genome_len as f64).log(4.0).ceil() as usize + 4).min(read_len.saturating_sub(2));
        let q0 = q0.max(8);
        let levels = vec![q0, (q0 + 2).min(read_len.saturating_sub(1)).max(q0)];
        let mut levels = levels;
        levels.dedup();
        ShrecParams { genome_len, alpha: 2.0, levels, iterations: 3 }
    }
}

/// Outcome statistics of a SHREC run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShrecStats {
    /// Total base corrections applied.
    pub corrections: u64,
    /// Windows flagged suspicious but left unchanged (no unique fix).
    pub unresolved: u64,
}

/// The SHREC corrector.
pub struct Shrec {
    params: ShrecParams,
}

impl Shrec {
    /// Create a corrector with the given parameters.
    pub fn new(params: ShrecParams) -> Shrec {
        assert!(!params.levels.is_empty(), "need at least one trie level");
        assert!(params.levels.iter().all(|&q| (2..=32).contains(&q)));
        Shrec { params }
    }

    /// Expected occurrence count of a unique genomic `q`-gram, over both
    /// strands: `n` read windows of the level, uniform over `2(|G|−q+1)`
    /// genomic positions per strand-symmetric table.
    fn expected_count(&self, total_windows: u64, q: usize) -> f64 {
        let positions = 2 * (self.params.genome_len.saturating_sub(q) + 1).max(1);
        total_windows as f64 / positions as f64
    }

    fn threshold(&self, e: f64) -> f64 {
        // Bernoulli-trial variance np(1−p) ≈ e for p << 1.
        (e - self.params.alpha * e.sqrt()).max(2.0)
    }

    /// Count all `q`-grams of `reads` and their reverse complements.
    fn count_level(reads: &[Read], q: usize) -> FxHashMap<Kmer, u32> {
        let chunk = (reads.len() / (rayon::current_num_threads() * 4)).max(128);
        reads
            .par_chunks(chunk)
            .map(|chunk| {
                let mut m: FxHashMap<Kmer, u32> = FxHashMap::default();
                for r in chunk {
                    ngs_kmer::for_each_kmer(&r.seq, q, |_, v| {
                        *m.entry(v).or_insert(0) += 1;
                        *m.entry(ngs_kmer::packed::reverse_complement_packed(v, q)).or_insert(0) +=
                            1;
                    });
                }
                m
            })
            .reduce(FxHashMap::default, |a, b| {
                let (mut big, small) = if a.len() >= b.len() { (a, b) } else { (b, a) };
                for (k, c) in small {
                    *big.entry(k).or_insert(0) += c;
                }
                big
            })
    }

    /// Correct `reads`, returning corrected copies and statistics.
    pub fn correct(&self, reads: &[Read]) -> (Vec<Read>, ShrecStats) {
        let mut current: Vec<Read> = reads.to_vec();
        let mut stats = ShrecStats::default();
        for _ in 0..self.params.iterations {
            let mut changed_any = false;
            for &q in &self.params.levels {
                let counts = Self::count_level(&current, q);
                let total_windows: u64 =
                    current.iter().map(|r| 2 * (r.len().saturating_sub(q - 1)) as u64).sum();
                let e = self.expected_count(total_windows, q);
                let thr = self.threshold(e);
                let level_stats: Vec<(bool, ShrecStats)> = current
                    .par_iter_mut()
                    .map(|r| {
                        let mut s = ShrecStats::default();
                        let changed = correct_read_level(r, q, &counts, thr, &mut s);
                        (changed, s)
                    })
                    .collect();
                for (changed, s) in level_stats {
                    changed_any |= changed;
                    stats.corrections += s.corrections;
                    stats.unresolved += s.unresolved;
                }
            }
            if !changed_any {
                break;
            }
        }
        (current, stats)
    }
}

/// Scan one read at trie depth `q`; correct suspicious windows in place.
/// Returns whether anything changed.
fn correct_read_level(
    read: &mut Read,
    q: usize,
    counts: &FxHashMap<Kmer, u32>,
    thr: f64,
    stats: &mut ShrecStats,
) -> bool {
    if read.len() < q {
        return false;
    }
    let mut changed = false;
    let mut j = q - 1; // window ends at j
    while j < read.len() {
        let start = j + 1 - q;
        let window = &read.seq[start..=j];
        let Some(w) = encode_kmer(window) else {
            j += 1;
            continue;
        };
        let count = counts.get(&w).copied().unwrap_or(0) as f64;
        if count >= thr {
            j += 1;
            continue;
        }
        // Suspicious: the last base of the window may be erroneous. Try the
        // three sibling leaves (same prefix, different last base).
        let last_code = alphabet::encode_base(read.seq[j]);
        let mut candidates: Vec<(u8, u32)> = Vec::new();
        for code in 0..4u8 {
            if Some(code) == last_code {
                continue;
            }
            let sibling = ngs_kmer::packed::set_base(w, q, q - 1, code);
            let c = counts.get(&sibling).copied().unwrap_or(0);
            if (c as f64) >= thr {
                // Subtree check: the corrected base must also be solid in
                // the next window (its extension), when one exists.
                let solid_extension = if j + 1 < read.len() {
                    let mut ext = read.seq[start + 1..=j + 1].to_vec();
                    ext[q - 2] = alphabet::decode_base(code);
                    match encode_kmer(&ext) {
                        Some(ev) => {
                            // Accept when the extension is at least as
                            // plausible as the uncorrected one.
                            let orig_ext = encode_kmer(&read.seq[start + 1..=j + 1]);
                            let orig_c =
                                orig_ext.and_then(|v| counts.get(&v).copied()).unwrap_or(0);
                            counts.get(&ev).copied().unwrap_or(0) >= orig_c.max(1)
                        }
                        None => true, // N downstream: no extension evidence
                    }
                } else {
                    true
                };
                if solid_extension {
                    candidates.push((code, c));
                }
            }
        }
        match candidates.len() {
            1 => {
                read.seq[j] = alphabet::decode_base(candidates[0].0);
                stats.corrections += 1;
                changed = true;
                // Re-examine from the next window (counts are the level's
                // snapshot; the trie merge is emulated lazily).
                j += 1;
            }
            0 => {
                stats.unresolved += 1;
                j += 1;
            }
            _ => {
                // Ambiguous: SHREC merges only identical subtrees; multiple
                // plausible siblings means no safe merge.
                stats.unresolved += 1;
                j += 1;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngs_eval::evaluate_correction;
    use ngs_simulate::{simulate_reads, ErrorModel, GenomeSpec, ReadSimConfig};

    fn simulate(pe: f64, n: usize, seed: u64) -> (Vec<u8>, ngs_simulate::SimulatedReads) {
        let g = GenomeSpec::uniform(20_000).generate(17).seq;
        let cfg = ReadSimConfig {
            read_len: 36,
            n_reads: n,
            error_model: ErrorModel::uniform(36, pe),
            both_strands: true,
            with_quals: false,
            n_rate: 0.0,
            seed,
        };
        let sim = simulate_reads(&g, &cfg);
        (g, sim)
    }

    #[test]
    fn recommended_params_reasonable() {
        let p = ShrecParams::recommended(4_600_000, 36);
        assert!(p.levels.iter().all(|&q| q < 36));
        assert!(p.levels[0] >= 8);
    }

    #[test]
    fn error_free_reads_untouched() {
        let (g, sim) = simulate(0.0, 2_000, 1);
        let shrec = Shrec::new(ShrecParams::recommended(g.len(), 36));
        let (corrected, stats) = shrec.correct(&sim.reads);
        let truths: Vec<Vec<u8>> = sim.truth.iter().map(|t| t.true_seq.clone()).collect();
        let eval = evaluate_correction(&sim.reads, &corrected, &truths);
        // Nothing to fix; a tiny number of FPs is tolerated but none expected
        // at high coverage.
        assert_eq!(eval.tp, 0);
        assert!(eval.fp < 20, "fp={} corrections={}", eval.fp, stats.corrections);
    }

    #[test]
    fn corrects_majority_of_errors_on_clean_genome() {
        let (g, sim) = simulate(0.01, 22_000, 2); // ~40x coverage
        let shrec = Shrec::new(ShrecParams::recommended(g.len(), 36));
        let (corrected, _) = shrec.correct(&sim.reads);
        let truths: Vec<Vec<u8>> = sim.truth.iter().map(|t| t.true_seq.clone()).collect();
        let eval = evaluate_correction(&sim.reads, &corrected, &truths);
        assert!(eval.gain() > 0.4, "gain={} ({eval:?})", eval.gain());
        assert!(eval.specificity() > 0.99, "specificity={}", eval.specificity());
    }

    #[test]
    fn planted_single_error_fixed() {
        // High coverage of a single region; one read carries one error.
        let g = GenomeSpec::uniform(2_000).generate(3).seq;
        let mut reads: Vec<Read> = (0..400)
            .map(|i| {
                let start = (i * 7) % (g.len() - 36);
                Read::new(format!("r{i}"), &g[start..start + 36])
            })
            .collect();
        let true_seq = reads[0].seq.clone();
        reads[0].seq[18] = alphabet::complement_base(reads[0].seq[18]);
        let shrec = Shrec::new(ShrecParams {
            genome_len: g.len(),
            alpha: 2.0,
            levels: vec![12],
            iterations: 2,
        });
        let (corrected, stats) = shrec.correct(&reads);
        assert_eq!(corrected[0].seq, true_seq, "stats={stats:?}");
    }

    #[test]
    fn stats_track_corrections() {
        let (g, sim) = simulate(0.02, 6_000, 4);
        let shrec = Shrec::new(ShrecParams::recommended(g.len(), 36));
        let (_, stats) = shrec.correct(&sim.reads);
        assert!(stats.corrections > 0);
    }
}
