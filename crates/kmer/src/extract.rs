//! Rolling k-mer extraction from ASCII sequences.
//!
//! Windows containing an ambiguous base yield no k-mer; the rolling encoder
//! restarts after each such base, so extraction remains O(L) per read.

use crate::packed::Kmer;
use ngs_core::alphabet::encode_base;

/// Call `f(offset, kmer)` for every length-`k` window of `seq` consisting
/// solely of unambiguous bases. `offset` is the window's start position.
///
/// # Panics
/// Panics if `k == 0` or `k > 32`.
pub fn for_each_kmer(seq: &[u8], k: usize, mut f: impl FnMut(usize, Kmer)) {
    assert!((1..=32).contains(&k), "k must be in 1..=32, got {k}");
    if seq.len() < k {
        return;
    }
    let mask: u64 = if k == 32 { u64::MAX } else { (1u64 << (2 * k)) - 1 };
    let mut acc: u64 = 0;
    let mut valid = 0usize; // length of the current run of unambiguous bases
    for (i, &b) in seq.iter().enumerate() {
        match encode_base(b) {
            Some(code) => {
                acc = ((acc << 2) | code as u64) & mask;
                valid += 1;
                if valid >= k {
                    f(i + 1 - k, acc);
                }
            }
            None => {
                valid = 0;
                acc = 0;
            }
        }
    }
}

/// Collect `(offset, kmer)` pairs for every valid window (convenience form).
pub fn kmers_of(seq: &[u8], k: usize) -> Vec<(usize, Kmer)> {
    let mut out = Vec::with_capacity(seq.len().saturating_sub(k - 1));
    for_each_kmer(seq, k, |pos, v| out.push((pos, v)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::{decode_kmer, encode_kmer};
    use proptest::prelude::*;

    #[test]
    fn extracts_all_windows() {
        let seq = b"ACGTAC";
        let ks = kmers_of(seq, 3);
        assert_eq!(ks.len(), 4);
        for (pos, v) in ks {
            assert_eq!(decode_kmer(v, 3), seq[pos..pos + 3].to_vec());
        }
    }

    #[test]
    fn skips_windows_with_n() {
        let seq = b"ACNGTACG";
        let ks = kmers_of(seq, 3);
        // Valid windows: GTA, TAC, ACG (positions 3, 4, 5).
        assert_eq!(
            ks,
            vec![
                (3, encode_kmer(b"GTA").unwrap()),
                (4, encode_kmer(b"TAC").unwrap()),
                (5, encode_kmer(b"ACG").unwrap()),
            ]
        );
    }

    #[test]
    fn short_sequence_yields_nothing() {
        assert!(kmers_of(b"AC", 3).is_empty());
        assert!(kmers_of(b"", 3).is_empty());
    }

    #[test]
    fn k32_full_width() {
        let seq: Vec<u8> = (0..40).map(|i| b"ACGT"[i % 4]).collect();
        let ks = kmers_of(&seq, 32);
        assert_eq!(ks.len(), 40 - 32 + 1);
        for (pos, v) in ks {
            assert_eq!(decode_kmer(v, 32), seq[pos..pos + 32].to_vec());
        }
    }

    proptest! {
        #[test]
        fn matches_naive_extraction(
            seq in proptest::collection::vec(
                prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T'), Just(b'N')], 0..100),
            k in 1usize..12,
        ) {
            let fast = kmers_of(&seq, k);
            let mut naive = Vec::new();
            if seq.len() >= k {
                for pos in 0..=(seq.len() - k) {
                    if let Some(v) = encode_kmer(&seq[pos..pos + k]) {
                        naive.push((pos, v));
                    }
                }
            }
            prop_assert_eq!(fast, naive);
        }
    }
}
