//! The k-spectrum `R^k` with occurrence counts.
//!
//! Following §2.2, the spectrum of a read set is the union of the k-spectra
//! of all reads **and their reverse complements** (double-strandedness,
//! §2.3). It is stored as a sorted array of `(kmer, count)` so membership and
//! count queries are binary searches and the neighbour index (§2.3 Phase 1)
//! can keep masked-sorted permutations of the same array.

use crate::extract::for_each_kmer;
use crate::packed::{reverse_complement_packed, Kmer};
use ngs_core::hash::FxHashMap;
use ngs_core::{NgsError, Read};
use rayon::prelude::*;

/// A sorted k-spectrum: parallel arrays of distinct k-mers and their counts.
#[derive(Debug, Clone)]
pub struct KSpectrum {
    k: usize,
    kmers: Vec<Kmer>,
    counts: Vec<u32>,
}

impl KSpectrum {
    /// Build the spectrum of `reads` (single strand only).
    pub fn from_reads(reads: &[Read], k: usize) -> KSpectrum {
        Self::build(reads, k, false)
    }

    /// Build the spectrum of `reads` plus their reverse complements.
    pub fn from_reads_both_strands(reads: &[Read], k: usize) -> KSpectrum {
        Self::build(reads, k, true)
    }

    fn build(reads: &[Read], k: usize, both_strands: bool) -> KSpectrum {
        // Parallel fold into per-chunk hash maps, then merge. Chunks are
        // large enough that the merge step is cheap relative to counting.
        let chunk = (reads.len() / (rayon::current_num_threads() * 4)).max(256);
        let map = reads
            .par_chunks(chunk)
            .map(|chunk| {
                let mut m: FxHashMap<Kmer, u32> = FxHashMap::default();
                for r in chunk {
                    for_each_kmer(&r.seq, k, |_, v| {
                        *m.entry(v).or_insert(0) += 1;
                        if both_strands {
                            *m.entry(reverse_complement_packed(v, k)).or_insert(0) += 1;
                        }
                    });
                }
                m
            })
            .reduce(FxHashMap::default, |a, b| {
                // Merge the smaller map into the larger one.
                if a.len() >= b.len() {
                    Self::merge_into(a, b)
                } else {
                    Self::merge_into(b, a)
                }
            });
        Self::from_map(map, k)
    }

    fn merge_into(
        mut big: FxHashMap<Kmer, u32>,
        small: FxHashMap<Kmer, u32>,
    ) -> FxHashMap<Kmer, u32> {
        for (kmer, c) in small {
            *big.entry(kmer).or_insert(0) += c;
        }
        big
    }

    /// Build from an explicit `(kmer -> count)` map.
    pub fn from_map(map: FxHashMap<Kmer, u32>, k: usize) -> KSpectrum {
        let mut pairs: Vec<(Kmer, u32)> = map.into_iter().collect();
        pairs.par_sort_unstable_by_key(|&(v, _)| v);
        let (kmers, counts): (Vec<Kmer>, Vec<u32>) = pairs.into_iter().unzip();
        KSpectrum { k, kmers, counts }
    }

    /// Build from pre-sorted, deduplicated parallel arrays.
    ///
    /// The invariant is validated unconditionally — also in release builds —
    /// because every `count`/`index_of` lookup binary-searches `kmers`:
    /// accepting unsorted or duplicated input would not crash, it would
    /// silently return wrong counts for the rest of the run.
    ///
    /// # Errors
    /// [`NgsError::InvalidParameter`] when the arrays differ in length or
    /// `kmers` is not strictly increasing (i.e. unsorted or containing
    /// duplicates); the message names the first offending index.
    pub fn from_sorted(
        k: usize,
        kmers: Vec<Kmer>,
        counts: Vec<u32>,
    ) -> Result<KSpectrum, NgsError> {
        if kmers.len() != counts.len() {
            return Err(NgsError::InvalidParameter(format!(
                "KSpectrum::from_sorted: {} kmers but {} counts",
                kmers.len(),
                counts.len()
            )));
        }
        if let Some(i) = (1..kmers.len()).find(|&i| kmers[i - 1] >= kmers[i]) {
            return Err(NgsError::InvalidParameter(format!(
                "KSpectrum::from_sorted: kmers not strictly increasing at index {i} \
                 ({:#x} then {:#x})",
                kmers[i - 1],
                kmers[i]
            )));
        }
        Ok(KSpectrum { k, kmers, counts })
    }

    /// The k this spectrum was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct k-mers.
    pub fn len(&self) -> usize {
        self.kmers.len()
    }

    /// True when no k-mer was observed.
    pub fn is_empty(&self) -> bool {
        self.kmers.is_empty()
    }

    /// The sorted distinct k-mers.
    pub fn kmers(&self) -> &[Kmer] {
        &self.kmers
    }

    /// Counts parallel to [`KSpectrum::kmers`].
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Index of `kmer` in the sorted array, if present.
    #[inline]
    pub fn index_of(&self, kmer: Kmer) -> Option<usize> {
        self.kmers.binary_search(&kmer).ok()
    }

    /// Occurrence count of `kmer` (0 if absent).
    #[inline]
    pub fn count(&self, kmer: Kmer) -> u32 {
        self.index_of(kmer).map_or(0, |i| self.counts[i])
    }

    /// True iff `kmer` was observed.
    #[inline]
    pub fn contains(&self, kmer: Kmer) -> bool {
        self.index_of(kmer).is_some()
    }

    /// Total number of k-mer instances (sum of counts).
    pub fn total_instances(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Iterate `(kmer, count)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (Kmer, u32)> + '_ {
        self.kmers.iter().copied().zip(self.counts.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::encode_kmer;
    use proptest::prelude::*;

    fn reads(seqs: &[&[u8]]) -> Vec<Read> {
        seqs.iter().enumerate().map(|(i, s)| Read::new(format!("r{i}"), s)).collect()
    }

    #[test]
    fn counts_single_strand() {
        let rs = reads(&[b"ACGTA", b"CGTAC"]);
        let sp = KSpectrum::from_reads(&rs, 3);
        assert_eq!(sp.count(encode_kmer(b"CGT").unwrap()), 2);
        assert_eq!(sp.count(encode_kmer(b"ACG").unwrap()), 1);
        assert_eq!(sp.count(encode_kmer(b"GGG").unwrap()), 0);
        assert_eq!(sp.total_instances(), 6);
    }

    #[test]
    fn both_strands_adds_revcomp() {
        let rs = reads(&[b"ACG"]);
        let sp = KSpectrum::from_reads_both_strands(&rs, 3);
        assert_eq!(sp.count(encode_kmer(b"ACG").unwrap()), 1);
        assert_eq!(sp.count(encode_kmer(b"CGT").unwrap()), 1);
        assert_eq!(sp.len(), 2);
    }

    #[test]
    fn palindromic_kmer_counted_twice_on_both_strands() {
        // ACGT is its own reverse complement.
        let rs = reads(&[b"ACGT"]);
        let sp = KSpectrum::from_reads_both_strands(&rs, 4);
        assert_eq!(sp.count(encode_kmer(b"ACGT").unwrap()), 2);
    }

    #[test]
    fn ambiguous_bases_skipped() {
        let rs = reads(&[b"ACNGT"]);
        let sp = KSpectrum::from_reads(&rs, 3);
        assert!(sp.is_empty());
    }

    #[test]
    fn from_sorted_accepts_valid_input() {
        let sp = KSpectrum::from_sorted(3, vec![1, 5, 9], vec![2, 1, 4]).unwrap();
        assert_eq!(sp.count(5), 1);
        assert_eq!(sp.count(9), 4);
        assert_eq!(sp.count(2), 0);
        assert!(KSpectrum::from_sorted(3, vec![], vec![]).unwrap().is_empty());
    }

    /// Regression (release-mode correctness): `from_sorted` used to only
    /// `debug_assert!` its invariant, so release builds accepted unsorted
    /// or duplicated input and binary-search lookups returned wrong counts.
    #[test]
    fn from_sorted_rejects_corrupt_input() {
        // Unsorted.
        let err = KSpectrum::from_sorted(3, vec![9, 1], vec![1, 1]).unwrap_err();
        assert!(err.to_string().contains("not strictly increasing"), "{err}");
        assert!(err.to_string().contains("index 1"), "{err}");
        // Duplicated.
        assert!(KSpectrum::from_sorted(3, vec![4, 4], vec![1, 1]).is_err());
        // Length mismatch.
        let err = KSpectrum::from_sorted(3, vec![1, 2], vec![1]).unwrap_err();
        assert!(err.to_string().contains("2 kmers but 1 counts"), "{err}");
    }

    #[test]
    fn sorted_invariant() {
        let rs = reads(&[b"TTTTACGTACGTAAAA"]);
        let sp = KSpectrum::from_reads(&rs, 5);
        assert!(sp.kmers().windows(2).all(|w| w[0] < w[1]));
    }

    proptest! {
        #[test]
        fn parallel_build_matches_sequential_count(
            seqs in proptest::collection::vec(
                proptest::collection::vec(
                    prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')], 5..40),
                1..20),
        ) {
            let rs: Vec<Read> = seqs.iter().enumerate()
                .map(|(i, s)| Read::new(format!("r{i}"), s)).collect();
            let sp = KSpectrum::from_reads(&rs, 4);
            // Sequential reference count.
            let mut m: FxHashMap<Kmer, u32> = FxHashMap::default();
            for r in &rs {
                for w in r.seq.windows(4) {
                    *m.entry(encode_kmer(w).unwrap()).or_insert(0) += 1;
                }
            }
            prop_assert_eq!(sp.len(), m.len());
            for (kmer, c) in m {
                prop_assert_eq!(sp.count(kmer), c);
            }
        }
    }
}
