//! Hamming-graph neighbourhood retrieval.
//!
//! The Hamming graph `G_H` (§2.3) has one vertex per observed k-mer and an
//! edge between k-mers within Hamming distance `d`. Storing it explicitly is
//! memory-prohibitive, so the paper proposes two retrieval schemes, both
//! implemented here:
//!
//! * **Brute-force enumeration** — generate all `C(k,d)·3^d` mutant k-mers of
//!   the query and binary-search each in the spectrum
//!   (`O(C(k,d)·3^d·log|R^k|)` per query);
//! * **Masked replicas** (§2.3 Phase 1) — split the `k` positions into `c`
//!   chunks; for every choice of `d` chunks keep a permutation of the
//!   spectrum sorted with those chunk positions masked to zero. Any k-mer
//!   within distance `d` of the query differs in positions covered by at most
//!   `d` chunks, so it collides with the query's masked key in at least one
//!   replica: one binary search per replica finds all neighbours.

use crate::packed::{hamming_distance, Kmer};
use crate::spectrum::KSpectrum;
use ngs_core::NgsError;
use rayon::prelude::*;
use std::borrow::Cow;

/// Strategy used by [`NeighborIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeighborStrategy {
    /// Enumerate all mutant k-mers and probe the spectrum.
    BruteForce,
    /// §2.3's masked-replica index with `c` chunks.
    MaskedReplicas {
        /// Number of positional chunks (`d < c <= k`).
        chunks: usize,
    },
}

/// The owned, expensive-to-build part of a neighbour index: the masked
/// replica permutations. Building sorts the spectrum once per chunk subset
/// (Phase 1's dominant cost), so long-lived correctors build a
/// `NeighborTables` once and take cheap [`NeighborTables::view`]s per
/// query batch instead of re-sorting on every call.
#[derive(Clone)]
pub struct NeighborTables {
    d: usize,
    strategy: NeighborStrategy,
    /// Length and k of the spectrum the tables were built over, so `view`
    /// can reject a mismatched spectrum instead of answering garbage.
    spectrum_len: usize,
    k: usize,
    replicas: Vec<Replica>,
}

#[derive(Clone)]
struct Replica {
    /// Bits to *keep* (complement of the masked-out chunk positions).
    keep_mask: u64,
    /// Spectrum indices sorted by `kmer & keep_mask`.
    order: Vec<u32>,
}

impl NeighborTables {
    /// Build the replica tables for distance-`d` queries over `spectrum`.
    ///
    /// # Panics
    /// Panics if `d == 0`, `d > k`, or (for masked replicas) `chunks` is
    /// not in `(d, k]`.
    pub fn build(spectrum: &KSpectrum, d: usize, strategy: NeighborStrategy) -> NeighborTables {
        let k = spectrum.k();
        assert!(d >= 1 && d <= k, "d must be in 1..=k");
        let replicas = match strategy {
            NeighborStrategy::BruteForce => Vec::new(),
            NeighborStrategy::MaskedReplicas { chunks } => {
                assert!(chunks > d && chunks <= k, "need d < chunks <= k");
                subsets(chunks, d)
                    .into_par_iter()
                    .map(|subset| {
                        let masked_out: u64 = subset
                            .iter()
                            .map(|&ci| chunk_mask(k, chunks, ci))
                            .fold(0, |a, b| a | b);
                        let keep_mask = !masked_out;
                        let mut order: Vec<u32> = (0..spectrum.len() as u32).collect();
                        order.sort_unstable_by_key(|&i| spectrum.kmers()[i as usize] & keep_mask);
                        Replica { keep_mask, order }
                    })
                    .collect()
            }
        };
        NeighborTables { d, strategy, spectrum_len: spectrum.len(), k, replicas }
    }

    /// The maximum Hamming distance these tables answer.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The strategy the tables were built with.
    pub fn strategy(&self) -> NeighborStrategy {
        self.strategy
    }

    /// Number of replicas held (0 for brute force).
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Length of the spectrum the tables were built over.
    pub fn spectrum_len(&self) -> usize {
        self.spectrum_len
    }

    /// The k of the spectrum the tables were built over.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The raw replica data — `(keep_mask, sorted spectrum indices)` per
    /// replica — for checkpoint serialization. Inverse of
    /// [`NeighborTables::from_parts`].
    pub fn replica_parts(&self) -> impl Iterator<Item = (u64, &[u32])> + '_ {
        self.replicas.iter().map(|r| (r.keep_mask, r.order.as_slice()))
    }

    /// Reassemble tables from checkpointed parts, validating the cheap
    /// structural invariants (every order is a permutation-sized list of
    /// in-range spectrum indices) so a corrupt checkpoint cannot produce an
    /// index that answers garbage or panics on query.
    pub fn from_parts(
        d: usize,
        strategy: NeighborStrategy,
        spectrum_len: usize,
        k: usize,
        replicas: Vec<(u64, Vec<u32>)>,
    ) -> Result<NeighborTables, NgsError> {
        if d == 0 || d > k {
            return Err(NgsError::InvalidParameter(format!(
                "NeighborTables::from_parts: d={d} out of 1..={k}"
            )));
        }
        match strategy {
            NeighborStrategy::BruteForce if !replicas.is_empty() => {
                return Err(NgsError::InvalidParameter(
                    "NeighborTables::from_parts: brute force carries no replicas".into(),
                ));
            }
            NeighborStrategy::MaskedReplicas { chunks } if chunks <= d || chunks > k => {
                return Err(NgsError::InvalidParameter(format!(
                    "NeighborTables::from_parts: chunks={chunks} out of ({d}, {k}]"
                )));
            }
            _ => {}
        }
        let replicas = replicas
            .into_iter()
            .map(|(keep_mask, order)| {
                if order.len() != spectrum_len {
                    return Err(NgsError::InvalidParameter(format!(
                        "NeighborTables::from_parts: replica order length {} != spectrum length \
                         {spectrum_len}",
                        order.len()
                    )));
                }
                if order.iter().any(|&i| i as usize >= spectrum_len) {
                    return Err(NgsError::InvalidParameter(
                        "NeighborTables::from_parts: replica index out of range".into(),
                    ));
                }
                Ok(Replica { keep_mask, order })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(NeighborTables { d, strategy, spectrum_len, k, replicas })
    }

    /// A query view pairing these tables with the spectrum they were built
    /// over. O(1): no sorting, no allocation.
    ///
    /// # Panics
    /// Panics when `spectrum` does not match the one the tables were built
    /// from (by length and k — the cheap invariants we can check).
    pub fn view<'s>(&'s self, spectrum: &'s KSpectrum) -> NeighborIndex<'s> {
        assert_eq!(
            (self.spectrum_len, self.k),
            (spectrum.len(), spectrum.k()),
            "NeighborTables::view: spectrum does not match the build-time spectrum"
        );
        NeighborIndex {
            spectrum,
            d: self.d,
            strategy: self.strategy,
            replicas: Cow::Borrowed(&self.replicas),
        }
    }
}

/// An index answering d-neighbourhood queries over a [`KSpectrum`].
///
/// Either owns its replica tables ([`NeighborIndex::build`]) or borrows
/// them from a long-lived [`NeighborTables`] ([`NeighborTables::view`]).
pub struct NeighborIndex<'s> {
    spectrum: &'s KSpectrum,
    d: usize,
    strategy: NeighborStrategy,
    /// One replica per chunk-subset: the mask applied to keys, and spectrum
    /// indices sorted by masked k-mer value. Empty for brute force.
    replicas: Cow<'s, [Replica]>,
}

/// All `C(n, d)` subsets of `{0..n}` of size `d`, as index vectors.
fn subsets(n: usize, d: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(d);
    fn rec(n: usize, d: usize, start: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == d {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(n, d, i + 1, cur, out);
            cur.pop();
        }
    }
    rec(n, d, 0, &mut cur, &mut out);
    out
}

/// 2-bit-position mask covering chunk `ci` of `c` chunks over `k` positions.
fn chunk_mask(k: usize, c: usize, ci: usize) -> u64 {
    // Positions are distributed as evenly as possible: chunk ci covers
    // [ci*k/c, (ci+1)*k/c).
    let lo = ci * k / c;
    let hi = (ci + 1) * k / c;
    let mut m = 0u64;
    for pos in lo..hi {
        m |= 3u64 << (2 * (k - 1 - pos));
    }
    m
}

impl<'s> NeighborIndex<'s> {
    /// Build a self-contained index for distance-`d` queries (tables owned
    /// by the index). For repeated query batches over the same spectrum,
    /// build a [`NeighborTables`] once and call [`NeighborTables::view`]
    /// instead.
    ///
    /// # Panics
    /// Panics if `d == 0`, `d > k`, or (for masked replicas) `chunks` is not
    /// in `(d, k]`.
    pub fn build(
        spectrum: &'s KSpectrum,
        d: usize,
        strategy: NeighborStrategy,
    ) -> NeighborIndex<'s> {
        let tables = NeighborTables::build(spectrum, d, strategy);
        NeighborIndex { spectrum, d, strategy, replicas: Cow::Owned(tables.replicas) }
    }

    /// The maximum Hamming distance this index answers.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The spectrum this index was built over.
    pub fn spectrum(&self) -> &KSpectrum {
        self.spectrum
    }

    /// Number of replicas held (0 for brute force).
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Return the spectrum indices of all *observed* k-mers within Hamming
    /// distance `max_d` of `query`, **excluding** `query` itself. `max_d`
    /// must not exceed the index's `d`.
    pub fn neighbors(&self, query: Kmer, max_d: usize) -> Vec<usize> {
        assert!(max_d <= self.d, "query distance {max_d} exceeds index d {}", self.d);
        if max_d == 0 {
            return Vec::new();
        }
        match self.strategy {
            NeighborStrategy::BruteForce => self.brute_force(query, max_d),
            NeighborStrategy::MaskedReplicas { .. } => self.via_replicas(query, max_d),
        }
    }

    fn brute_force(&self, query: Kmer, max_d: usize) -> Vec<usize> {
        let k = self.spectrum.k();
        let mut out = Vec::new();
        // Enumerate mutants with up to max_d substitutions via recursion over
        // positions; each complete mutant is probed in the spectrum.
        fn rec(
            spectrum: &KSpectrum,
            k: usize,
            cur: Kmer,
            next_pos: usize,
            remaining: usize,
            out: &mut Vec<usize>,
        ) {
            if remaining == 0 {
                return;
            }
            for pos in next_pos..k {
                for delta in 1..=3u8 {
                    let m = crate::packed::mutate_base(cur, k, pos, delta);
                    if let Some(i) = spectrum.index_of(m) {
                        out.push(i);
                    }
                    rec(spectrum, k, m, pos + 1, remaining - 1, out);
                }
            }
        }
        rec(self.spectrum, k, query, 0, max_d, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn via_replicas(&self, query: Kmer, max_d: usize) -> Vec<usize> {
        let kmers = self.spectrum.kmers();
        let mut out = Vec::new();
        for rep in self.replicas.iter() {
            let key = query & rep.keep_mask;
            // Binary search for the first index whose masked value == key.
            let lo = rep.order.partition_point(|&i| (kmers[i as usize] & rep.keep_mask) < key);
            for &i in &rep.order[lo..] {
                let v = kmers[i as usize];
                if v & rep.keep_mask != key {
                    break;
                }
                if v != query {
                    let hd = hamming_distance(v, query) as usize;
                    if hd <= max_d {
                        out.push(i as usize);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Precompute the full adjacency (neighbour lists for every spectrum
    /// index) in parallel. Used by REDEEM, whose EM iterates over all edges
    /// of the Hamming graph many times.
    pub fn full_adjacency(&self, max_d: usize) -> Vec<Vec<u32>> {
        self.spectrum
            .kmers()
            .par_iter()
            .map(|&v| self.neighbors(v, max_d).into_iter().map(|i| i as u32).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::encode_kmer;
    use ngs_core::hash::FxHashMap;
    use proptest::prelude::*;

    fn spectrum_of(kmers: &[&[u8]]) -> KSpectrum {
        let mut m: FxHashMap<Kmer, u32> = FxHashMap::default();
        for s in kmers {
            *m.entry(encode_kmer(s).unwrap()).or_insert(0) += 1;
        }
        KSpectrum::from_map(m, kmers[0].len())
    }

    #[test]
    fn subsets_counts() {
        assert_eq!(subsets(5, 1).len(), 5);
        assert_eq!(subsets(5, 2).len(), 10);
        assert_eq!(subsets(4, 4).len(), 1);
    }

    #[test]
    fn chunk_masks_partition_all_positions() {
        let k = 13;
        let c = 5;
        let mut acc = 0u64;
        for ci in 0..c {
            let m = chunk_mask(k, c, ci);
            assert_eq!(acc & m, 0, "chunks must not overlap");
            acc |= m;
        }
        assert_eq!(acc, (1u64 << (2 * k)) - 1, "chunks must cover all positions");
    }

    #[test]
    fn brute_force_finds_distance_one() {
        let sp = spectrum_of(&[b"ACGTA", b"ACGTT", b"ACGGA", b"TTTTT"]);
        let idx = NeighborIndex::build(&sp, 1, NeighborStrategy::BruteForce);
        let q = encode_kmer(b"ACGTA").unwrap();
        let ns = idx.neighbors(q, 1);
        let found: Vec<Vec<u8>> =
            ns.iter().map(|&i| crate::packed::decode_kmer(sp.kmers()[i], 5)).collect();
        assert!(found.contains(&b"ACGTT".to_vec()));
        assert!(found.contains(&b"ACGGA".to_vec()));
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn replicas_match_brute_force_on_fixed_set() {
        let sp = spectrum_of(&[
            b"ACGTACGTACGTA",
            b"ACGTACGTACGTT",
            b"ACGAACGTACGTA",
            b"TCGTACGTACGTA",
            b"ACGTACGTACGGG",
            b"TTTTTTTTTTTTT",
        ]);
        for d in 1..=2usize {
            let bf = NeighborIndex::build(&sp, d, NeighborStrategy::BruteForce);
            let mr =
                NeighborIndex::build(&sp, d, NeighborStrategy::MaskedReplicas { chunks: d + 2 });
            for &q in sp.kmers() {
                assert_eq!(bf.neighbors(q, d), mr.neighbors(q, d), "d={d} q={q:x}");
            }
        }
    }

    #[test]
    fn query_never_returns_self() {
        let sp = spectrum_of(&[b"AAAAA", b"AAAAC"]);
        let idx = NeighborIndex::build(&sp, 2, NeighborStrategy::MaskedReplicas { chunks: 4 });
        let q = encode_kmer(b"AAAAA").unwrap();
        let ns = idx.neighbors(q, 2);
        assert_eq!(ns.len(), 1);
        assert_eq!(sp.kmers()[ns[0]], encode_kmer(b"AAAAC").unwrap());
    }

    #[test]
    fn unobserved_query_still_answered() {
        let sp = spectrum_of(&[b"AAAAA", b"CCCCC"]);
        let idx = NeighborIndex::build(&sp, 1, NeighborStrategy::MaskedReplicas { chunks: 3 });
        // Query a k-mer not present in the spectrum.
        let q = encode_kmer(b"AAAAC").unwrap();
        let ns = idx.neighbors(q, 1);
        assert_eq!(ns.len(), 1);
        assert_eq!(sp.kmers()[ns[0]], encode_kmer(b"AAAAA").unwrap());
    }

    #[test]
    fn tables_view_matches_owned_index() {
        let sp =
            spectrum_of(&[b"ACGTACGTACGTA", b"ACGTACGTACGTT", b"ACGAACGTACGTA", b"TCGTACGTACGTA"]);
        let tables = NeighborTables::build(&sp, 2, NeighborStrategy::MaskedReplicas { chunks: 4 });
        let owned = NeighborIndex::build(&sp, 2, NeighborStrategy::MaskedReplicas { chunks: 4 });
        // Two independent views over the same tables answer identically.
        let v1 = tables.view(&sp);
        let v2 = tables.view(&sp);
        for &q in sp.kmers() {
            assert_eq!(v1.neighbors(q, 2), owned.neighbors(q, 2));
            assert_eq!(v2.neighbors(q, 2), owned.neighbors(q, 2));
        }
        assert_eq!(tables.replica_count(), v1.replica_count());
        assert_eq!(tables.d(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn tables_view_rejects_mismatched_spectrum() {
        let sp = spectrum_of(&[b"AAAAA", b"CCCCC"]);
        let other = spectrum_of(&[b"AAAAA", b"CCCCC", b"GGGGG"]);
        let tables = NeighborTables::build(&sp, 1, NeighborStrategy::MaskedReplicas { chunks: 3 });
        let _ = tables.view(&other);
    }

    #[test]
    fn full_adjacency_is_symmetric() {
        let sp = spectrum_of(&[b"ACGTA", b"ACGTT", b"ACGGA", b"GCGGA"]);
        let idx = NeighborIndex::build(&sp, 1, NeighborStrategy::BruteForce);
        let adj = idx.full_adjacency(1);
        for (i, ns) in adj.iter().enumerate() {
            for &j in ns {
                assert!(adj[j as usize].contains(&(i as u32)), "edge {i}-{j} not symmetric");
            }
        }
    }

    fn arb_kmer_set(k: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
        proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')],
                k..=k,
            ),
            2..40,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn replica_index_complete_vs_exhaustive(seqs in arb_kmer_set(9),
                                                d in 1usize..=2,
                                                chunks in 3usize..=5) {
            let refs: Vec<&[u8]> = seqs.iter().map(|s| s.as_slice()).collect();
            let sp = spectrum_of(&refs);
            let idx = NeighborIndex::build(&sp, d, NeighborStrategy::MaskedReplicas { chunks });
            for (qi, &q) in sp.kmers().iter().enumerate() {
                // Exhaustive truth: scan all spectrum kmers.
                let truth: Vec<usize> = sp.kmers().iter().enumerate()
                    .filter(|&(i, &v)| i != qi && hamming_distance(v, q) as usize <= d)
                    .map(|(i, _)| i)
                    .collect();
                prop_assert_eq!(idx.neighbors(q, d), truth);
            }
        }
    }
}
