//! `ngs-kmer` — packed k-mers, k-spectra, Hamming-graph neighbourhoods and
//! tiles.
//!
//! This crate implements the data-structure layer of Chapters 2 and 3 of the
//! paper:
//!
//! * [`packed`] — 2-bit packed k-mers in a `u64` (`k ≤ 32`), with O(1)
//!   base access/mutation and O(k) reverse complement;
//! * [`extract`] — rolling k-mer extraction from ASCII reads with correct
//!   handling of ambiguous bases;
//! * [`spectrum`] — the k-spectrum `R^k` with occurrence counts `Y_l`,
//!   built in parallel and stored sorted for binary-search access;
//! * [`neighbor`] — retrieval of the d-neighbourhood `N^d_i` of a k-mer,
//!   either by brute-force mutant enumeration or by the paper's
//!   masked-replica index (§2.3 Phase 1): `C(c,d)` copies of the spectrum,
//!   each sorted under a positional mask, one binary search per replica;
//! * [`tile`] — tiles `t = α₁ ||_l α₂` (Definition 2.1) with plain and
//!   high-quality occurrence counts `O_c` / `O_g`.

pub mod extract;
pub mod neighbor;
pub mod packed;
pub mod spectrum;
pub mod tile;

pub use extract::{for_each_kmer, kmers_of};
pub use neighbor::{NeighborIndex, NeighborTables};
pub use packed::{
    canonical, decode_kmer, encode_kmer, hamming_distance, mutate_base, packed_base,
    reverse_complement_packed, set_base, Kmer,
};
pub use spectrum::KSpectrum;
pub use tile::{Tile, TileCounts, TileTable};
