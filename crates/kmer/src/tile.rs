//! Tiles — `l`-concatenations of two k-mers (Definitions 2.1–2.2).
//!
//! A tile `t = α₁ ||_l α₂` covers `m = 2k − l` bases. With `k ≤ 16` a tile
//! packs into a `u64` exactly like a k-mer. The tile table records, for every
//! tile observed in the reads (both strands), its multiplicity `O_c` and its
//! high-quality multiplicity `O_g` — the number of instances in which *every*
//! base has quality above `Q_c` (§2.3 "Tile Correction").

use crate::extract::for_each_kmer;
use crate::packed::{reverse_complement_packed, Kmer};
use ngs_core::hash::FxHashMap;
use ngs_core::Read;
use rayon::prelude::*;

/// A packed tile value (same encoding as a packed k-mer of length `2k − l`).
pub type Tile = u64;

/// Plain and high-quality occurrence counts of a tile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileCounts {
    /// Total occurrences `O_c`.
    pub oc: u32,
    /// High-quality occurrences `O_g` (every base quality > `Q_c`).
    pub og: u32,
}

/// Compose a tile from two packed k-mers overlapping in `l` bases.
///
/// Returns `None` when the suffix of `a1` and the prefix of `a2` disagree on
/// the `l` shared bases (such a pair cannot form a tile).
#[inline]
pub fn compose_tile(a1: Kmer, a2: Kmer, k: usize, l: usize) -> Option<Tile> {
    debug_assert!(l < k);
    if l > 0 {
        let a1_suffix = a1 & ((1u64 << (2 * l)) - 1);
        let a2_prefix = a2 >> (2 * (k - l));
        if a1_suffix != a2_prefix {
            return None;
        }
    }
    let tail_bases = k - l;
    Some((a1 << (2 * tail_bases)) | (a2 & ((1u64 << (2 * tail_bases)) - 1)))
}

/// Split a tile back into its two constituent k-mers.
#[inline]
pub fn split_tile(tile: Tile, k: usize, l: usize) -> (Kmer, Kmer) {
    let m = 2 * k - l;
    let a1 = tile >> (2 * (m - k));
    let a2 = tile & ((1u64 << (2 * k)) - 1);
    (a1, a2)
}

/// The table of tile occurrences for a read set.
#[derive(Debug, Clone)]
pub struct TileTable {
    k: usize,
    l: usize,
    map: FxHashMap<Tile, TileCounts>,
}

impl TileTable {
    /// Tile length in bases (`2k − l`).
    pub fn tile_len(&self) -> usize {
        2 * self.k - self.l
    }

    /// The k-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The k-mer overlap within a tile.
    pub fn overlap(&self) -> usize {
        self.l
    }

    /// Number of distinct tiles observed.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no tile was observed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counts for `tile` (zero counts if unobserved).
    #[inline]
    pub fn counts(&self, tile: Tile) -> TileCounts {
        self.map.get(&tile).copied().unwrap_or_default()
    }

    /// High-quality count `O_g` of `tile`.
    #[inline]
    pub fn og(&self, tile: Tile) -> u32 {
        self.counts(tile).og
    }

    /// Iterate `(tile, counts)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (Tile, TileCounts)> + '_ {
        self.map.iter().map(|(&t, &c)| (t, c))
    }

    /// Reassemble a table from `(tile, counts)` entries — the inverse of
    /// [`TileTable::iter`], used for checkpoint restore. Duplicate tiles sum
    /// their counts.
    ///
    /// # Panics
    /// Panics unless `1 ≤ k ≤ 16` and `l < k`, like [`TileTable::build`].
    pub fn from_parts(
        k: usize,
        l: usize,
        entries: impl IntoIterator<Item = (Tile, TileCounts)>,
    ) -> TileTable {
        assert!((1..=16).contains(&k), "tile table requires k in 1..=16");
        assert!(l < k, "overlap l must be < k");
        let mut map: FxHashMap<Tile, TileCounts> = FxHashMap::default();
        for (t, c) in entries {
            let e = map.entry(t).or_default();
            e.oc += c.oc;
            e.og += c.og;
        }
        TileTable { k, l, map }
    }

    /// Build the table from `reads` **and their reverse complements**, using
    /// `q_c` as the high-quality cutoff: an instance contributes to `O_g`
    /// only if every covered base has quality `> q_c`. Reads without quality
    /// strings contribute to `O_g` unconditionally (§2.3: "If a short read
    /// dataset comes with unreliable or missing quality score information, we
    /// set O_g = O_c").
    ///
    /// # Panics
    /// Panics unless `1 ≤ k ≤ 16` and `l < k` (so tiles fit in a `u64`).
    pub fn build(reads: &[Read], k: usize, l: usize, q_c: u8) -> TileTable {
        assert!((1..=16).contains(&k), "tile table requires k in 1..=16");
        assert!(l < k, "overlap l must be < k");
        let m = 2 * k - l;
        let chunk = (reads.len() / (rayon::current_num_threads() * 4)).max(256);
        let map = reads
            .par_chunks(chunk)
            .map(|chunk| {
                let mut table: FxHashMap<Tile, TileCounts> = FxHashMap::default();
                let mut lowq_prefix: Vec<u32> = Vec::new();
                for r in chunk {
                    // Prefix sums of low-quality positions allow O(1)
                    // "window all-high-quality?" checks.
                    lowq_prefix.clear();
                    lowq_prefix.push(0);
                    match &r.qual {
                        Some(q) => {
                            for &s in q {
                                let last = *lowq_prefix.last().unwrap();
                                lowq_prefix.push(last + u32::from(s <= q_c));
                            }
                        }
                        None => lowq_prefix.resize(r.seq.len() + 1, 0),
                    }
                    for_each_kmer(&r.seq, m, |pos, tile| {
                        let hq = lowq_prefix[pos + m] == lowq_prefix[pos];
                        let e = table.entry(tile).or_default();
                        e.oc += 1;
                        e.og += u32::from(hq);
                        // Reverse-complement instance: same base qualities.
                        let rc = reverse_complement_packed(tile, m);
                        let e = table.entry(rc).or_default();
                        e.oc += 1;
                        e.og += u32::from(hq);
                    });
                }
                table
            })
            .reduce(FxHashMap::default, |a, b| {
                let (mut big, small) = if a.len() >= b.len() { (a, b) } else { (b, a) };
                for (t, c) in small {
                    let e = big.entry(t).or_default();
                    e.oc += c.oc;
                    e.og += c.og;
                }
                big
            });
        TileTable { k, l, map }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::{decode_kmer, encode_kmer};
    use proptest::prelude::*;

    #[test]
    fn compose_zero_overlap() {
        let a1 = encode_kmer(b"ACG").unwrap();
        let a2 = encode_kmer(b"TTG").unwrap();
        let t = compose_tile(a1, a2, 3, 0).unwrap();
        assert_eq!(decode_kmer(t, 6), b"ACGTTG");
    }

    #[test]
    fn compose_with_overlap() {
        let a1 = encode_kmer(b"ACGT").unwrap();
        let a2 = encode_kmer(b"GTCC").unwrap();
        let t = compose_tile(a1, a2, 4, 2).unwrap();
        assert_eq!(decode_kmer(t, 6), b"ACGTCC");
    }

    #[test]
    fn compose_rejects_inconsistent_overlap() {
        let a1 = encode_kmer(b"ACGT").unwrap();
        let a2 = encode_kmer(b"CCCC").unwrap();
        assert_eq!(compose_tile(a1, a2, 4, 2), None);
    }

    #[test]
    fn split_inverts_compose() {
        let a1 = encode_kmer(b"ACGTA").unwrap();
        let a2 = encode_kmer(b"TACCC").unwrap();
        let t = compose_tile(a1, a2, 5, 2).unwrap();
        assert_eq!(split_tile(t, 5, 2), (a1, a2));
    }

    #[test]
    fn table_counts_both_strands() {
        let reads = vec![Read::new("r", b"ACGTTG")];
        let table = TileTable::build(&reads, 3, 0, 0);
        let fwd = encode_kmer(b"ACGTTG").unwrap();
        let rc = encode_kmer(b"CAACGT").unwrap();
        assert_eq!(table.counts(fwd).oc, 1);
        assert_eq!(table.counts(rc).oc, 1);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn high_quality_counting() {
        // Quality cutoff 20; one base below it poisons windows covering it.
        let mut q = vec![30u8; 8];
        q[4] = 10;
        let reads = vec![Read::with_qual("r", b"ACGTTGCA", q)];
        let table = TileTable::build(&reads, 3, 0, 20);
        // Window [0..6) covers position 4 -> not high quality.
        let t0 = encode_kmer(b"ACGTTG").unwrap();
        assert_eq!(table.counts(t0), TileCounts { oc: 1, og: 0 });
        // Its reverse complement instance inherits the same flag.
        let t0rc = encode_kmer(b"CAACGT").unwrap();
        assert_eq!(table.counts(t0rc), TileCounts { oc: 1, og: 0 });
    }

    #[test]
    fn missing_quals_count_as_high_quality() {
        let reads = vec![Read::new("r", b"ACGTTG")];
        let table = TileTable::build(&reads, 3, 0, 40);
        let t = encode_kmer(b"ACGTTG").unwrap();
        assert_eq!(table.counts(t), TileCounts { oc: 1, og: 1 });
    }

    #[test]
    fn ambiguous_bases_break_tiles() {
        let reads = vec![Read::new("r", b"ACGNTTG")];
        let table = TileTable::build(&reads, 2, 0, 0);
        // Valid length-4 windows avoiding N: none before N (only 3 bases),
        // "TTG" after N is 3 bases -> no length-4 window at all.
        assert!(table.is_empty());
    }

    proptest! {
        #[test]
        fn compose_split_round_trip(
            s1 in proptest::collection::vec(
                prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')], 6..=6),
            s2tail in proptest::collection::vec(
                prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')], 4..=4),
            l in 0usize..=2,
        ) {
            // Construct a2 to agree with a1 on the l-overlap.
            let k = 6;
            let mut s2 = s1[(k - l)..].to_vec();
            s2.extend_from_slice(&s2tail);
            s2.truncate(k);
            while s2.len() < k { s2.push(b'A'); }
            let a1 = encode_kmer(&s1).unwrap();
            let a2 = encode_kmer(&s2).unwrap();
            let t = compose_tile(a1, a2, k, l).unwrap();
            prop_assert_eq!(split_tile(t, k, l), (a1, a2));
            // Decoded tile is the l-concatenation of the strings.
            let mut expect = s1.clone();
            expect.extend_from_slice(&s2[l..]);
            prop_assert_eq!(decode_kmer(t, 2 * k - l), expect);
        }
    }
}
