//! 2-bit packed k-mers.
//!
//! A k-mer (`k ≤ 32`) is packed into a `u64` with the **first** base in the
//! most significant occupied bits, so numeric order equals lexicographic
//! order of the underlying strings. Base codes are those of
//! [`ngs_core::alphabet`] (`A=0, C=1, G=2, T=3`; complement = `code ^ 3`).

use ngs_core::alphabet::{decode_base, encode_base};

/// A packed k-mer value. The associated `k` travels separately — k-mer sets
/// in this workspace always share a single `k`.
pub type Kmer = u64;

/// Encode an ASCII slice of length `k` into a packed k-mer.
///
/// Returns `None` if the slice contains any ambiguous base.
///
/// # Panics
/// Panics if `seq.len() > 32`.
#[inline]
pub fn encode_kmer(seq: &[u8]) -> Option<Kmer> {
    assert!(seq.len() <= 32, "k-mer length {} exceeds 32", seq.len());
    let mut v: u64 = 0;
    for &b in seq {
        v = (v << 2) | encode_base(b)? as u64;
    }
    Some(v)
}

/// Decode a packed k-mer back into ASCII bases.
pub fn decode_kmer(kmer: Kmer, k: usize) -> Vec<u8> {
    (0..k).map(|i| decode_base(packed_base(kmer, k, i))).collect()
}

/// The 2-bit code of the base at position `i` (0 = first base).
#[inline]
pub fn packed_base(kmer: Kmer, k: usize, i: usize) -> u8 {
    debug_assert!(i < k);
    ((kmer >> (2 * (k - 1 - i))) & 3) as u8
}

/// Replace the base at position `i` with 2-bit `code`.
#[inline]
pub fn set_base(kmer: Kmer, k: usize, i: usize, code: u8) -> Kmer {
    debug_assert!(i < k && code < 4);
    let shift = 2 * (k - 1 - i);
    (kmer & !(3u64 << shift)) | ((code as u64) << shift)
}

/// Substitute position `i` by XOR-ing its code with `delta ∈ {1,2,3}`,
/// guaranteeing the result differs from the input at that position.
#[inline]
pub fn mutate_base(kmer: Kmer, k: usize, i: usize, delta: u8) -> Kmer {
    debug_assert!(i < k && (1..=3).contains(&delta));
    kmer ^ ((delta as u64) << (2 * (k - 1 - i)))
}

/// Reverse complement of a packed k-mer.
#[inline]
pub fn reverse_complement_packed(kmer: Kmer, k: usize) -> Kmer {
    // Complement every base (xor with 3), then reverse 2-bit groups.
    let mut v = !kmer; // complement: each 2-bit group ^ 0b11
    v = ((v >> 2) & 0x3333_3333_3333_3333) | ((v & 0x3333_3333_3333_3333) << 2);
    v = ((v >> 4) & 0x0F0F_0F0F_0F0F_0F0F) | ((v & 0x0F0F_0F0F_0F0F_0F0F) << 4);
    v = v.swap_bytes();
    v >> (64 - 2 * k)
}

/// The canonical form: the numerically smaller of a k-mer and its reverse
/// complement. Used where strand symmetry matters.
#[inline]
pub fn canonical(kmer: Kmer, k: usize) -> Kmer {
    kmer.min(reverse_complement_packed(kmer, k))
}

/// Hamming distance between two packed k-mers of equal `k`.
#[inline]
pub fn hamming_distance(a: Kmer, b: Kmer) -> u32 {
    // A 2-bit group differs iff either of its bits differs; fold the pair of
    // difference bits into the low bit of each group and popcount.
    let x = a ^ b;
    let folded = (x | (x >> 1)) & 0x5555_5555_5555_5555;
    folded.count_ones()
}

/// Iterate all `3k` packed k-mers at Hamming distance exactly 1.
pub fn neighbors1(kmer: Kmer, k: usize) -> impl Iterator<Item = Kmer> {
    (0..k).flat_map(move |i| (1..=3u8).map(move |d| mutate_base(kmer, k, i, d)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngs_core::alphabet::reverse_complement;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_round_trip() {
        let s = b"ACGTACGTTTGCA";
        let v = encode_kmer(s).unwrap();
        assert_eq!(decode_kmer(v, s.len()), s.to_vec());
    }

    #[test]
    fn encode_rejects_n() {
        assert_eq!(encode_kmer(b"ACNGT"), None);
    }

    #[test]
    fn numeric_order_is_lexicographic() {
        let a = encode_kmer(b"AAAC").unwrap();
        let b = encode_kmer(b"AACA").unwrap();
        let c = encode_kmer(b"TTTT").unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn base_access_and_set() {
        let v = encode_kmer(b"ACGT").unwrap();
        assert_eq!(packed_base(v, 4, 0), 0);
        assert_eq!(packed_base(v, 4, 3), 3);
        let w = set_base(v, 4, 1, 3);
        assert_eq!(decode_kmer(w, 4), b"ATGT");
    }

    #[test]
    fn revcomp_known() {
        let v = encode_kmer(b"AACGT").unwrap();
        assert_eq!(decode_kmer(reverse_complement_packed(v, 5), 5), b"ACGTT");
    }

    #[test]
    fn revcomp_full_width_k32() {
        let s: Vec<u8> = b"ACGTACGTACGTACGTACGTACGTACGTACGT".to_vec();
        let v = encode_kmer(&s).unwrap();
        assert_eq!(decode_kmer(reverse_complement_packed(v, 32), 32), reverse_complement(&s));
    }

    #[test]
    fn hamming_known() {
        let a = encode_kmer(b"ACGT").unwrap();
        let b = encode_kmer(b"AGGA").unwrap();
        assert_eq!(hamming_distance(a, b), 2);
        assert_eq!(hamming_distance(a, a), 0);
    }

    #[test]
    fn neighbors1_all_distinct_distance_one() {
        let k = 7;
        let v = encode_kmer(b"ACGTACG").unwrap();
        let ns: Vec<Kmer> = neighbors1(v, k).collect();
        assert_eq!(ns.len(), 3 * k);
        let mut sorted = ns.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3 * k);
        for n in ns {
            assert_eq!(hamming_distance(v, n), 1);
        }
    }

    fn arb_kmer(k: usize) -> impl Strategy<Value = Kmer> {
        (0u64..(1u64 << (2 * k).min(63))).prop_map(move |v| {
            if k == 32 {
                v
            } else {
                v & ((1u64 << (2 * k)) - 1)
            }
        })
    }

    proptest! {
        #[test]
        fn revcomp_involution(k in 1usize..=32, raw in any::<u64>()) {
            let v = if k == 32 { raw } else { raw & ((1u64 << (2*k)) - 1) };
            prop_assert_eq!(reverse_complement_packed(reverse_complement_packed(v, k), k), v);
        }

        #[test]
        fn revcomp_matches_string_version(seq in proptest::collection::vec(
            prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')], 1..=32)) {
            let k = seq.len();
            let v = encode_kmer(&seq).unwrap();
            let rc = reverse_complement_packed(v, k);
            prop_assert_eq!(decode_kmer(rc, k), reverse_complement(&seq));
        }

        #[test]
        fn hamming_matches_string_count(a in arb_kmer(13), b in arb_kmer(13)) {
            let sa = decode_kmer(a, 13);
            let sb = decode_kmer(b, 13);
            let expect = sa.iter().zip(&sb).filter(|(x, y)| x != y).count() as u32;
            prop_assert_eq!(hamming_distance(a, b), expect);
        }

        #[test]
        fn canonical_is_strand_symmetric(v in arb_kmer(11)) {
            let rc = reverse_complement_packed(v, 11);
            prop_assert_eq!(canonical(v, 11), canonical(rc, 11));
        }

        #[test]
        fn mutate_changes_exactly_one(v in arb_kmer(9), i in 0usize..9, d in 1u8..=3) {
            let m = mutate_base(v, 9, i, d);
            prop_assert_eq!(hamming_distance(v, m), 1);
            prop_assert_ne!(packed_base(m, 9, i), packed_base(v, 9, i));
        }
    }
}
