//! Kill-at-every-stage crash/resume matrix for the three pipeline CLIs.
//!
//! For each pipeline and each checkpointable stage: run once cold (no
//! checkpointing) to fix the expected output, run again with
//! `--crash-after STAGE` (the process exits 42 right after that stage's
//! checkpoint lands, simulating a crash at the worst recoverable moment),
//! then run with `--resume` and require the resumed output to be
//! *byte-identical* to the cold run. Also checks the atomicity contract:
//! a crashed run leaves no output file at all, never a truncated one.

use ngs_core::Read;
use std::path::{Path, PathBuf};
use std::process::Command;

const CRASH_EXIT_CODE: i32 = 42;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

fn random_genome(len: usize, seed: &mut u64) -> Vec<u8> {
    (0..len).map(|_| b"ACGT"[(xorshift(seed) % 4) as usize]).collect()
}

/// Sample `n` error-bearing reads of `read_len` from `genome`.
fn sample_reads(genome: &[u8], n: usize, read_len: usize, seed: &mut u64) -> Vec<Read> {
    (0..n)
        .map(|i| {
            let pos = (xorshift(seed) as usize) % (genome.len() - read_len);
            let mut seq = genome[pos..pos + read_len].to_vec();
            if xorshift(seed) % 100 < 40 {
                let at = (xorshift(seed) as usize) % read_len;
                seq[at] = b"ACGT"[(xorshift(seed) % 4) as usize];
            }
            Read::new(format!("r{i}"), seq)
        })
        .collect()
}

fn write_fastq(path: &Path, reads: &[Read]) {
    let file = std::fs::File::create(path).unwrap();
    ngs_seqio::write_fastq(file, reads).unwrap();
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ngs_crash_resume_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(bin: &str, args: &[&str]) -> std::process::Output {
    Command::new(bin).args(args).output().expect("spawn pipeline binary")
}

fn assert_ok(out: &std::process::Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed (status {:?}):\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Run the full matrix for one binary: cold run, then for every stage a
/// crash run + resume run whose output must match the cold run's bytes.
fn crash_resume_matrix(bin: &str, dir: &Path, input: &Path, extra: &[&str], stages: &[&str]) {
    let input = input.to_str().unwrap();
    let cold_out = dir.join("cold.out");
    let cold_metrics = dir.join("cold_metrics.json");
    let mut args = vec!["--input", input, "--output", cold_out.to_str().unwrap()];
    args.extend_from_slice(extra);
    let cold_json = cold_metrics.to_str().unwrap().to_string();
    args.extend_from_slice(&["--metrics-json", &cold_json]);
    assert_ok(&run(bin, &args), "cold run");
    let cold_bytes = std::fs::read(&cold_out).unwrap();
    assert!(cold_metrics.exists(), "cold run wrote no metrics report");

    for stage in stages {
        let ckpt = dir.join(format!("ckpt_{stage}"));
        let warm_out = dir.join(format!("warm_{stage}.out"));
        let warm_metrics = dir.join(format!("warm_{stage}_metrics.json"));

        // Crash right after `stage`'s checkpoint lands.
        let mut args = vec!["--input", input, "--output", warm_out.to_str().unwrap()];
        args.extend_from_slice(extra);
        args.extend_from_slice(&[
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
            "--crash-after",
            stage,
        ]);
        let out = run(bin, &args);
        assert_eq!(
            out.status.code(),
            Some(CRASH_EXIT_CODE),
            "crash run for stage {stage} exited wrong:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // Atomicity: the crashed run must not have left any output file —
        // complete or truncated.
        assert!(!warm_out.exists(), "stage {stage}: crashed run left an output file behind");
        assert!(
            ckpt.join("MANIFEST").exists(),
            "stage {stage}: crash run saved no checkpoint manifest"
        );

        // Resume and require byte-identical output.
        let mut args = vec!["--input", input, "--output", warm_out.to_str().unwrap()];
        args.extend_from_slice(extra);
        let warm_json = warm_metrics.to_str().unwrap().to_string();
        args.extend_from_slice(&[
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
            "--resume",
            "--metrics-json",
            &warm_json,
        ]);
        assert_ok(&run(bin, &args), &format!("resume run for stage {stage}"));
        let warm_bytes = std::fs::read(&warm_out).unwrap();
        assert_eq!(
            warm_bytes, cold_bytes,
            "stage {stage}: resumed output differs from the cold run"
        );
        // The resumed run must still pass its required-span metrics gate
        // (emit_metrics errors out — nonzero exit — when spans are missing).
        assert!(warm_metrics.exists(), "stage {stage}: resumed run wrote no metrics report");
    }
}

#[test]
fn reptile_resumes_byte_identically_after_crash_at_every_stage() {
    let dir = test_dir("reptile");
    let mut seed = 0x5eed_0001;
    let genome = random_genome(1200, &mut seed);
    let reads = sample_reads(&genome, 400, 50, &mut seed);
    let input = dir.join("reads.fastq");
    write_fastq(&input, &reads);
    crash_resume_matrix(
        env!("CARGO_BIN_EXE_reptile-correct"),
        &dir,
        &input,
        &["--genome-len", "1200"],
        &["index"],
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn redeem_resumes_byte_identically_after_crash_at_every_stage() {
    let dir = test_dir("redeem");
    let mut seed = 0x5eed_0002;
    let genome = random_genome(600, &mut seed);
    let reads = sample_reads(&genome, 250, 40, &mut seed);
    let input = dir.join("reads.fastq");
    write_fastq(&input, &reads);
    crash_resume_matrix(
        env!("CARGO_BIN_EXE_redeem-detect"),
        &dir,
        &input,
        &["--k", "9", "--max-iters", "12", "--checkpoint-every", "2"],
        &["model", "em"],
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn closet_resumes_byte_identically_after_crash_at_every_stage() {
    let dir = test_dir("closet");
    let mut seed = 0x5eed_0003;
    // Two divergent gene families so clustering has structure.
    let gene_a = random_genome(400, &mut seed);
    let gene_b = random_genome(400, &mut seed);
    let mut reads = sample_reads(&gene_a, 60, 120, &mut seed);
    reads.extend(sample_reads(&gene_b, 60, 120, &mut seed));
    for (i, r) in reads.iter_mut().enumerate() {
        r.id = format!("r{i}");
    }
    let input = dir.join("reads.fastq");
    write_fastq(&input, &reads);
    crash_resume_matrix(
        env!("CARGO_BIN_EXE_closet-cluster"),
        &dir,
        &input,
        &["--workers", "2", "--thresholds", "0.7,0.5"],
        &["edges"],
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// The checkpoint/resume path composed with PR 1's fault injection: a
/// Phase-I run that survives injected task faults checkpoints an edge list
/// that resumes into the same clusters as a fault-free cold run.
#[test]
fn closet_checkpoint_is_stable_under_injected_task_faults() {
    use mapreduce_lite::{FaultKind, FaultPlan, Stage};

    let mut seed = 0x5eed_0004;
    let gene = random_genome(300, &mut seed);
    let reads = sample_reads(&gene, 80, 100, &mut seed);
    let collector = ngs_observe::Collector::disabled();

    let params = closet::ClosetParams::standard(100, vec![0.7, 0.5], 2);
    let cold_phase = closet::build_edges_observed(&reads, &params, &collector).unwrap();
    let cold = closet::cluster_edges_observed(&cold_phase, &params, &collector).unwrap();

    // Same job under injected faults: first attempts of map task 0 and
    // reduce task 1 die, retries recover.
    let mut faulty = params.clone();
    faulty.job.fault_plan = FaultPlan::none()
        .with_fault(Stage::Map, 0, 0, FaultKind::Panic)
        .with_fault(Stage::Reduce, 1, 0, FaultKind::Panic);
    let phase = closet::build_edges_observed(&reads, &faulty, &collector).unwrap();
    assert!(phase.sketch_stats.job_stats.task_failures > 0, "faults were not injected");
    assert_eq!(phase.validated, cold_phase.validated);

    // Round-trip through the checkpoint encoding and cluster from it.
    let restored = closet::EdgePhase::from_bytes(&phase.to_bytes(), reads.len()).unwrap();
    let warm = closet::cluster_edges_observed(&restored, &params, &collector).unwrap();
    assert_eq!(warm.clusters_by_threshold.len(), cold.clusters_by_threshold.len());
    for ((t1, c1), (t2, c2)) in cold.clusters_by_threshold.iter().zip(&warm.clusters_by_threshold) {
        assert_eq!(t1, t2);
        let v1: Vec<&Vec<u32>> = c1.iter().map(|c| &c.vertices).collect();
        let v2: Vec<&Vec<u32>> = c2.iter().map(|c| &c.vertices).collect();
        assert_eq!(v1, v2);
    }
}
