//! Fault harness for the real `ngs-serve` binary: true processes, true
//! sockets, true signals. The contracts under test:
//!
//! * served corrections are byte-identical to `reptile-correct` batch
//!   output, cold or warm-started;
//! * overload is shed with explicit `Overloaded` replies and a bounded
//!   queue — never unbounded buffering;
//! * SIGTERM during load finishes in-flight requests and exits 0;
//! * SIGKILL mid-request is survivable: a restarted server warm-starts
//!   from the checkpoint and idempotent client retries succeed;
//! * deadline storms get `DeadlineExceeded`, not hangs;
//! * a stalled or garbage-spewing connection dies alone — the server
//!   keeps serving everyone else;
//! * malformed numeric CLI args exit 2 before any work happens.

use ngs_cli::read_sequences;
use ngs_core::Read;
use ngs_server::{Client, ClientConfig, ClientError, Endpoint};
use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}
const SIGTERM: i32 = 15;

const GENOME_LEN: usize = 5_000;

fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("serve_chaos_{tag}_{}_{seq}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A unix socket path short enough for `sun_path` even when TMPDIR is a
/// deep CI workspace — sockets always go to /tmp, artifacts to `scratch`.
fn short_socket(tag: &str) -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    format!("unix:/tmp/ngsc_{tag}_{}_{seq}.sock", std::process::id())
}

fn simulate(dir: &Path) -> String {
    let reads = dir.join("reads.fastq");
    let status = Command::new(env!("CARGO_BIN_EXE_simulate-reads"))
        .args(["--output", reads.to_str().unwrap()])
        .args(["--genome-len", &GENOME_LEN.to_string()])
        .args(["--coverage", "10", "--read-len", "36", "--seed", "11"])
        .status()
        .expect("run simulate-reads");
    assert!(status.success(), "simulate-reads failed");
    reads.to_str().unwrap().to_string()
}

/// Batch-mode ground truth, optionally leaving an index checkpoint behind
/// for the server to warm-start from.
fn batch_correct(dir: &Path, reads: &str, ckpt: Option<&Path>) -> Vec<u8> {
    let out = dir.join("batch.fastq");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_reptile-correct"));
    cmd.args(["--input", reads, "--output", out.to_str().unwrap()])
        .args(["--genome-len", &GENOME_LEN.to_string()]);
    if let Some(c) = ckpt {
        cmd.args(["--checkpoint-dir", c.to_str().unwrap()]);
    }
    let status = cmd.status().expect("run reptile-correct");
    assert!(status.success(), "reptile-correct failed");
    std::fs::read(out).expect("read batch output")
}

struct ServeProc {
    child: Child,
    endpoint: Endpoint,
    stderr_path: PathBuf,
}

impl ServeProc {
    /// Spawn `ngs-serve` and block until its ready line names the bound
    /// endpoint (the ephemeral-port handshake).
    fn start(dir: &Path, reads: &str, listen: &str, extra: &[&str]) -> ServeProc {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let stderr_path = dir.join(format!("serve_{seq}.err"));
        let stderr = std::fs::File::create(&stderr_path).expect("stderr file");
        let mut child = Command::new(env!("CARGO_BIN_EXE_ngs-serve"))
            .args(["--input", reads, "--listen", listen])
            .args(["--genome-len", &GENOME_LEN.to_string()])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(stderr)
            .spawn()
            .expect("spawn ngs-serve");
        let mut line = String::new();
        BufReader::new(child.stdout.take().expect("stdout"))
            .read_line(&mut line)
            .expect("read ready line");
        let ep = line
            .trim()
            .strip_prefix("ngs-serve: listening on ")
            .unwrap_or_else(|| {
                panic!(
                    "no ready line (got {line:?}); stderr:\n{}",
                    std::fs::read_to_string(&stderr_path).unwrap_or_default()
                )
            })
            .to_string();
        let endpoint = Endpoint::parse(&ep).expect("parse ready endpoint");
        ServeProc { child, endpoint, stderr_path }
    }

    fn sigterm(&self) {
        unsafe {
            kill(self.child.id() as i32, SIGTERM);
        }
    }

    fn wait_exit(&mut self, timeout: Duration) -> std::process::ExitStatus {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            assert!(Instant::now() < deadline, "server did not exit within {timeout:?}");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn stderr_text(&self) -> String {
        std::fs::read_to_string(&self.stderr_path).unwrap_or_default()
    }

    /// SIGTERM, assert a clean drain (exit 0 + the drained summary line).
    fn shutdown_clean(mut self) -> String {
        self.sigterm();
        let status = self.wait_exit(Duration::from_secs(30));
        let err = self.stderr_text();
        assert!(status.success(), "expected exit 0 after SIGTERM, got {status:?}; stderr:\n{err}");
        assert!(err.contains("drained:"), "no drain summary in stderr:\n{err}");
        err
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn quick_client(endpoint: &Endpoint) -> Client {
    Client::new(
        endpoint.clone(),
        ClientConfig { base_backoff: Duration::from_millis(5), ..ClientConfig::default() },
    )
}

/// Correct the whole file through the server in batches, returning the
/// serialized FASTQ bytes (same writer as the batch pipeline).
fn serve_correct(endpoint: &Endpoint, reads: &[Read], dir: &Path) -> Vec<u8> {
    let mut client = quick_client(endpoint);
    let mut corrected = Vec::with_capacity(reads.len());
    for chunk in reads.chunks(500) {
        let batch = client.correct(chunk, 0).expect("served correction");
        assert_eq!(batch.reads.len(), chunk.len());
        corrected.extend(batch.reads);
    }
    let out = dir.join("served.fastq");
    ngs_cli::write_sequences(out.to_str().unwrap(), &corrected).expect("write served output");
    std::fs::read(out).expect("read served output")
}

/// `"name": 123` scraper for the handful of metric fields the assertions
/// need — keeps the test free of a JSON-parser dependency.
fn json_u64(text: &str, name: &str) -> Option<u64> {
    let at = text.find(&format!("\"{name}\""))?;
    let rest = &text[at..];
    let colon = rest.find(':')?;
    let digits: String =
        rest[colon + 1..].trim_start().chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[test]
fn served_output_matches_batch_and_restart_is_warm() {
    let dir = scratch("parity");
    let reads_path = simulate(&dir);
    let reads = read_sequences(&reads_path).expect("load reads");
    let ckpt = dir.join("ckpt");
    let expected = batch_correct(&dir, &reads_path, Some(&ckpt));

    // Cold start against the same checkpoint dir: builds and saves.
    let listen = short_socket("par");
    let ckpt_flags = ["--checkpoint-dir", ckpt.to_str().unwrap(), "--resume", "--workers", "2"];
    let cold = ServeProc::start(&dir, &reads_path, &listen, &ckpt_flags);
    assert_eq!(serve_correct(&cold.endpoint, &reads, &dir), expected, "cold parity");
    cold.shutdown_clean();

    // Warm restart on the same socket: index loaded, not rebuilt, and the
    // trace proves it.
    let trace = dir.join("serve-trace.jsonl");
    let mut flags: Vec<&str> = ckpt_flags.to_vec();
    flags.extend(["--trace-jsonl", trace.to_str().unwrap()]);
    let warm = ServeProc::start(&dir, &reads_path, &listen, &flags);
    assert!(warm.stderr_text().contains("warm start"), "stderr:\n{}", warm.stderr_text());
    assert_eq!(serve_correct(&warm.endpoint, &reads, &dir), expected, "warm parity");
    warm.shutdown_clean();
    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    assert!(trace_text.contains("serve.index.load"), "warm start span missing from trace");
    assert!(
        !trace_text.contains("reptile.build."),
        "warm start still ran the index build:\n{trace_text}"
    );
    assert!(trace_text.contains("serve.request"), "request spans missing from trace");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn queue_full_flood_sheds_explicitly_with_bounded_memory() {
    let dir = scratch("flood");
    let reads_path = simulate(&dir);
    let reads = read_sequences(&reads_path).expect("load reads");
    let metrics = dir.join("metrics.json");
    let server = ServeProc::start(
        &dir,
        &reads_path,
        "tcp:127.0.0.1:0",
        &["--workers", "1", "--queue-capacity", "1", "--metrics-json", metrics.to_str().unwrap()],
    );

    // 8 single-attempt clients fire the whole read set at once at a
    // 1-worker, 1-slot server: anything not admitted must be refused
    // explicitly (`Overloaded` -> RetriesExhausted with no retries left),
    // never buffered.
    let outcomes: Vec<_> = (0..8)
        .map(|i| {
            let endpoint = server.endpoint.clone();
            let reads = reads.clone();
            std::thread::spawn(move || {
                let mut c = Client::new(
                    endpoint,
                    ClientConfig { max_attempts: 1, seed: i, ..ClientConfig::default() },
                );
                c.correct(&reads, 0).map(|b| b.reads.len())
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    let served = outcomes.iter().filter(|r| r.is_ok()).count();
    let shed = outcomes
        .iter()
        .filter(|r| matches!(r, Err(ClientError::RetriesExhausted(m)) if m.contains("overloaded")))
        .count();
    assert_eq!(served + shed, 8, "unexpected outcomes: {outcomes:?}");
    assert!(served >= 1, "nothing served under flood");
    assert!(shed >= 1, "nothing shed under flood: {outcomes:?}");

    server.shutdown_clean();
    let metrics = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(json_u64(&metrics, "serve.overloaded").unwrap_or(0) >= 1, "{metrics}");
    assert!(json_u64(&metrics, "serve.queue_depth_peak").unwrap_or(99) <= 1, "{metrics}");
    let peak = json_u64(&metrics, "peak_rss_bytes").expect("peak rss");
    assert!(peak < 512 << 20, "unbounded memory under overload: peak {peak} bytes");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn sigterm_under_load_finishes_in_flight_and_exits_zero() {
    let dir = scratch("drain");
    let reads_path = simulate(&dir);
    let reads = read_sequences(&reads_path).expect("load reads");
    let server = ServeProc::start(&dir, &reads_path, "tcp:127.0.0.1:0", &["--workers", "1"]);

    // One big in-flight request, SIGTERM mid-correction: the drain must
    // finish it (the reply arrives), then the process exits 0.
    let endpoint = server.endpoint.clone();
    let in_flight = {
        let reads = reads.clone();
        std::thread::spawn(move || quick_client(&endpoint).correct(&reads, 0))
    };
    std::thread::sleep(Duration::from_millis(100));
    let err = server.shutdown_clean();
    let batch = in_flight.join().expect("client thread").expect("in-flight request dropped");
    assert_eq!(batch.reads.len(), reads.len());
    assert!(err.contains("corrected"), "drain summary lost the served request:\n{err}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn sigkill_mid_request_is_survived_by_retry_against_warm_restart() {
    let dir = scratch("kill9");
    let reads_path = simulate(&dir);
    let reads = read_sequences(&reads_path).expect("load reads");
    let ckpt = dir.join("ckpt");
    let expected = batch_correct(&dir, &reads_path, Some(&ckpt));
    let listen = short_socket("k9");
    let flags = ["--checkpoint-dir", ckpt.to_str().unwrap(), "--resume", "--workers", "1"];

    let mut first = ServeProc::start(&dir, &reads_path, &listen, &flags);

    // Client with a deep retry budget; its request will be mid-correction
    // when the server is SIGKILLed, then keep retrying (idempotent) until
    // the restarted server answers.
    let endpoint = first.endpoint.clone();
    let client_thread = {
        let reads = reads.clone();
        std::thread::spawn(move || {
            let mut c = Client::new(
                endpoint,
                ClientConfig {
                    max_attempts: 20,
                    base_backoff: Duration::from_millis(100),
                    ..ClientConfig::default()
                },
            );
            c.correct(&reads, 0)
        })
    };
    std::thread::sleep(Duration::from_millis(50)); // let the request start
    first.child.kill().expect("SIGKILL");
    let _ = first.child.wait();

    // Warm restart on the same socket path; the retrying client finds it.
    let second = ServeProc::start(&dir, &reads_path, &listen, &flags);
    assert!(second.stderr_text().contains("warm start"), "{}", second.stderr_text());
    let batch = client_thread.join().expect("client thread").expect("retries never landed");
    assert_eq!(batch.reads.len(), reads.len());
    assert!(batch.attempts > 1, "the SIGKILL was not even noticed (attempts=1)");

    // And the restarted server still matches batch output byte-for-byte.
    assert_eq!(serve_correct(&second.endpoint, &reads, &dir), expected);
    second.shutdown_clean();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn deadline_storm_gets_deadline_exceeded_and_server_stays_healthy() {
    let dir = scratch("storm");
    let reads_path = simulate(&dir);
    let reads = read_sequences(&reads_path).expect("load reads");
    let server = ServeProc::start(&dir, &reads_path, "tcp:127.0.0.1:0", &["--workers", "1"]);

    // A 1 ms budget cannot cover a full-file batch: every request must
    // come back DeadlineExceeded (terminal — retrying would spend the
    // same budget), and promptly, not after the full correction.
    let storm: Vec<_> = (0..4)
        .map(|_| {
            let endpoint = server.endpoint.clone();
            let reads = reads.clone();
            std::thread::spawn(move || quick_client(&endpoint).correct(&reads, 1))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("storm thread"))
        .collect();
    for r in &storm {
        assert!(matches!(r, Err(ClientError::DeadlineExceeded)), "got {r:?}");
    }

    // The storm must not have wedged the server.
    let batch = quick_client(&server.endpoint).correct(&reads[..200], 0).expect("healthy after");
    assert_eq!(batch.reads.len(), 200);
    let err = server.shutdown_clean();
    assert!(err.contains("deadline-exceeded"), "{err}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn stalled_and_garbage_connections_die_alone() {
    let dir = scratch("isolate");
    let reads_path = simulate(&dir);
    let reads = read_sequences(&reads_path).expect("load reads");
    let server = ServeProc::start(
        &dir,
        &reads_path,
        "tcp:127.0.0.1:0",
        &["--idle-timeout-ms", "300", "--poll-interval-ms", "10"],
    );
    let addr = match &server.endpoint {
        Endpoint::Tcp(addr) => addr.clone(),
        other => panic!("expected tcp endpoint, got {other:?}"),
    };

    // A stalled client: half a frame header, then silence. The server
    // must cut it off at the idle timeout (EOF on our side), not wait
    // forever or die.
    let mut stalled = std::net::TcpStream::connect(&addr).expect("connect stalled");
    stalled.write_all(b"MRW1\x10\x00").expect("half a header");
    stalled.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = [0u8; 16];
    let n = stalled.read(&mut buf).expect("read after stall");
    assert_eq!(n, 0, "server should close a stalled connection");

    // A garbage-spewing client: killed on the spot (bad magic).
    let mut garbage = std::net::TcpStream::connect(&addr).expect("connect garbage");
    garbage.write_all(&[0xde; 64]).expect("garbage");
    garbage.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let n = garbage.read(&mut buf).expect("read after garbage");
    assert_eq!(n, 0, "server should close a garbage connection");

    // Everyone else is unaffected.
    let batch = quick_client(&server.endpoint).correct(&reads[..200], 0).expect("still serving");
    assert_eq!(batch.reads.len(), 200);
    let err = server.shutdown_clean();
    let conn_errors: u64 = err
        .split_once(" connection errors")
        .and_then(|(before, _)| before.rsplit('(').next()?.trim().parse().ok())
        .unwrap_or_else(|| panic!("no connection-error count in drain summary:\n{err}"));
    assert!(conn_errors >= 2, "expected both bad connections counted, got {conn_errors}:\n{err}");
    let _ = std::fs::remove_dir_all(dir);
}

/// (label, extra flags, extra env) for one bad-argument invocation.
type BadArgCase = (&'static str, &'static [&'static str], &'static [(&'static str, &'static str)]);

#[test]
fn malformed_numeric_args_exit_2_before_any_work() {
    let cases: &[BadArgCase] = &[
        ("ngs-serve --threads 0", &["--threads", "0"], &[]),
        ("ngs-serve --workers 0", &["--workers", "0"], &[]),
        ("ngs-serve --queue-capacity 0", &["--queue-capacity", "0"], &[]),
        ("ngs-serve NGS_THREADS=0", &[], &[("NGS_THREADS", "0")]),
        ("ngs-serve NGS_THREADS=wat", &[], &[("NGS_THREADS", "wat")]),
    ];
    for (what, flags, envs) in cases {
        // `--input` names a missing file on purpose: validation must
        // reject the numbers before any I/O happens.
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_ngs-serve"));
        cmd.args(["--input", "/nonexistent.fastq", "--listen", "tcp:127.0.0.1:0"]).args(*flags);
        for (k, v) in *envs {
            cmd.env(k, v);
        }
        let out = cmd.output().expect("run ngs-serve");
        assert_eq!(out.status.code(), Some(2), "{what}: {:?}", out.status);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("invalid parameter"), "{what}: stderr {stderr:?}");
    }

    // Same contract on the batch pipeline binary.
    let out = Command::new(env!("CARGO_BIN_EXE_reptile-correct"))
        .args(["--input", "/nonexistent.fastq", "--output", "/dev/null", "--threads", "1e3"])
        .output()
        .expect("run reptile-correct");
    assert_eq!(out.status.code(), Some(2), "{:?}", out.status);
}
