//! Thread-count determinism matrix: each pipeline CLI must produce
//! byte-identical output — and identical pipeline statistics — at
//! `NGS_THREADS=1` and `NGS_THREADS=8`.
//!
//! The parallel runtime's contract (see `crates/shim-rayon`) is that
//! results are a pure function of the input, never of thread count or
//! scheduling: chunk boundaries and reduction/sort trees depend only on
//! input length, mapped results land in index-addressed slots, float
//! sums stay sequential. This test pins that contract end to end through
//! real processes, because the pool size is fixed per process at first
//! use — only separate invocations can compare thread counts.
//!
//! Statistics are compared via the `counters` section of the metrics
//! report, which carries `ReptileStats` (bases changed, per-decision
//! counts) and the MapReduce `JobStats` (`job.*`) verbatim; wall-time
//! spans differ between runs by nature and are excluded.

use ngs_core::Read;
use std::path::{Path, PathBuf};
use std::process::Command;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

fn random_genome(len: usize, seed: &mut u64) -> Vec<u8> {
    (0..len).map(|_| b"ACGT"[(xorshift(seed) % 4) as usize]).collect()
}

fn sample_reads(genome: &[u8], n: usize, read_len: usize, seed: &mut u64) -> Vec<Read> {
    (0..n)
        .map(|i| {
            let pos = (xorshift(seed) as usize) % (genome.len() - read_len);
            let mut seq = genome[pos..pos + read_len].to_vec();
            if xorshift(seed) % 100 < 40 {
                let at = (xorshift(seed) as usize) % read_len;
                seq[at] = b"ACGT"[(xorshift(seed) % 4) as usize];
            }
            Read::new(format!("r{i}"), seq)
        })
        .collect()
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ngs_determinism_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The `"counters": { ... }` object of a metrics report: the
/// deterministic statistics (ReptileStats, JobStats, record counts),
/// with no wall-time fields.
fn counters_section(metrics_path: &Path) -> String {
    let text = std::fs::read_to_string(metrics_path).unwrap();
    let start = text.find("\"counters\": {").expect("metrics report has a counters section");
    let end = text[start..].find('}').expect("counters object closes") + start;
    text[start..=end].to_string()
}

/// Run `bin` once per thread count; outputs and counters must agree.
fn determinism_matrix(bin: &str, dir: &Path, input: &Path, extra: &[&str]) {
    let input = input.to_str().unwrap();
    let mut baseline: Option<(Vec<u8>, String)> = None;
    for threads in ["1", "8"] {
        let out_path = dir.join(format!("t{threads}.out"));
        let metrics_path = dir.join(format!("t{threads}_metrics.json"));
        let mut args = vec!["--input", input, "--output", out_path.to_str().unwrap()];
        args.extend_from_slice(extra);
        let metrics = metrics_path.to_str().unwrap().to_string();
        args.extend_from_slice(&["--metrics-json", &metrics]);
        let out = Command::new(bin)
            .args(&args)
            .env("NGS_THREADS", threads)
            .output()
            .expect("spawn pipeline binary");
        assert!(
            out.status.success(),
            "NGS_THREADS={threads} run failed (status {:?}):\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let bytes = std::fs::read(&out_path).unwrap();
        let counters = counters_section(&metrics_path);
        match &baseline {
            None => baseline = Some((bytes, counters)),
            Some((base_bytes, base_counters)) => {
                assert_eq!(
                    &bytes, base_bytes,
                    "output bytes differ between NGS_THREADS=1 and NGS_THREADS={threads}"
                );
                assert_eq!(
                    &counters, base_counters,
                    "pipeline statistics differ between NGS_THREADS=1 and NGS_THREADS={threads}"
                );
            }
        }
    }
}

#[test]
fn reptile_output_is_thread_count_invariant() {
    let dir = test_dir("reptile");
    let mut seed = 0xd37e_0001;
    let genome = random_genome(1500, &mut seed);
    let reads = sample_reads(&genome, 500, 50, &mut seed);
    let input = dir.join("reads.fastq");
    let file = std::fs::File::create(&input).unwrap();
    ngs_seqio::write_fastq(file, &reads).unwrap();
    determinism_matrix(
        env!("CARGO_BIN_EXE_reptile-correct"),
        &dir,
        &input,
        &["--genome-len", "1500"],
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn redeem_output_is_thread_count_invariant() {
    let dir = test_dir("redeem");
    let mut seed = 0xd37e_0002;
    let genome = random_genome(700, &mut seed);
    let reads = sample_reads(&genome, 300, 40, &mut seed);
    let input = dir.join("reads.fastq");
    let file = std::fs::File::create(&input).unwrap();
    ngs_seqio::write_fastq(file, &reads).unwrap();
    determinism_matrix(
        env!("CARGO_BIN_EXE_redeem-detect"),
        &dir,
        &input,
        &["--k", "9", "--max-iters", "15"],
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn closet_output_is_thread_count_invariant() {
    let dir = test_dir("closet");
    let mut seed = 0xd37e_0003;
    let gene_a = random_genome(400, &mut seed);
    let gene_b = random_genome(400, &mut seed);
    let mut reads = sample_reads(&gene_a, 70, 120, &mut seed);
    reads.extend(sample_reads(&gene_b, 70, 120, &mut seed));
    for (i, r) in reads.iter_mut().enumerate() {
        r.id = format!("r{i}");
    }
    let input = dir.join("reads.fastq");
    let file = std::fs::File::create(&input).unwrap();
    ngs_seqio::write_fastq(file, &reads).unwrap();
    determinism_matrix(
        env!("CARGO_BIN_EXE_closet-cluster"),
        &dir,
        &input,
        &["--workers", "2", "--thresholds", "0.7,0.5"],
    );
    let _ = std::fs::remove_dir_all(dir);
}
