//! End-to-end tests for `--trace-jsonl` on the three pipeline CLIs and the
//! `ngs-trace` tool: every pipeline writes a well-formed trace whose
//! MapReduce-free span set covers the required metrics spans, `ngs-trace
//! chrome` converts it, and `ngs-trace diff` catches a deliberate
//! regression (and blesses one with `--update-baseline`).

use ngs_core::Read;
use ngs_observe::traceview;
use std::path::{Path, PathBuf};
use std::process::Command;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

fn random_genome(len: usize, seed: &mut u64) -> Vec<u8> {
    (0..len).map(|_| b"ACGT"[(xorshift(seed) % 4) as usize]).collect()
}

fn sample_reads(genome: &[u8], n: usize, read_len: usize, seed: &mut u64) -> Vec<Read> {
    (0..n)
        .map(|i| {
            let pos = (xorshift(seed) as usize) % (genome.len() - read_len);
            let mut seq = genome[pos..pos + read_len].to_vec();
            if xorshift(seed) % 100 < 40 {
                let at = (xorshift(seed) as usize) % read_len;
                seq[at] = b"ACGT"[(xorshift(seed) % 4) as usize];
            }
            Read::new(format!("r{i}"), seq)
        })
        .collect()
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ngs_trace_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_input(dir: &Path, n: usize, read_len: usize, seed: u64) -> PathBuf {
    let mut seed = seed;
    let genome = random_genome(1200, &mut seed);
    let reads = sample_reads(&genome, n, read_len, &mut seed);
    let input = dir.join("reads.fastq");
    let file = std::fs::File::create(&input).unwrap();
    ngs_seqio::write_fastq(file, &reads).unwrap();
    input
}

fn run(bin: &str, args: &[&str]) -> std::process::Output {
    Command::new(bin).args(args).output().expect("spawn binary")
}

fn assert_ok(out: &std::process::Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed (status {:?}):\nstdout: {}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

const NGS_TRACE: &str = env!("CARGO_BIN_EXE_ngs-trace");

/// Run one pipeline with `--trace-jsonl` + `--metrics-json`, validate the
/// trace, and check the span contract: each of the pipeline's `required`
/// metrics spans must appear both in the BENCH report and in the trace,
/// because both views hang off the same collector. (The report also holds
/// synthetic `*.job.*` phase spans derived from `JobStats`, which have no
/// trace counterpart by design — the real per-attempt spans do.)
fn pipeline_trace_roundtrip(
    bin: &str,
    dir: &Path,
    extra: &[&str],
    required: &[&str],
) -> (PathBuf, PathBuf) {
    let input = write_input(dir, 300, 60, 0x7ace_0001);
    let output = dir.join("out.fastq");
    let trace = dir.join("trace.jsonl");
    let metrics = dir.join("BENCH.json");
    let mut args = vec![
        "--input",
        input.to_str().unwrap(),
        "--output",
        output.to_str().unwrap(),
        "--trace-jsonl",
        trace.to_str().unwrap(),
        "--metrics-json",
        metrics.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    assert_ok(&run(bin, &args), "pipeline run");

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let parsed = traceview::parse_jsonl(&text).expect("trace parses");
    let spans = traceview::check_well_formed(&parsed).expect("trace well-formed");
    assert!(!spans.is_empty(), "trace must contain spans");

    let bench = std::fs::read_to_string(&metrics).expect("metrics written");
    let (_, bench_spans) =
        ngs_observe::diff::parse_bench_spans(&bench).expect("metrics report parses");
    let trace_names = traceview::span_names(&parsed);
    for name in required {
        assert!(bench_spans.contains_key(*name), "required span {name:?} missing from report");
        assert!(
            trace_names.iter().any(|t| t == name),
            "required span {name:?} missing from trace (trace has {trace_names:?})"
        );
    }
    (trace, metrics)
}

/// `ngs-trace chrome` + `summary` must both accept a pipeline's trace.
fn trace_tools_accept(trace: &Path, dir: &Path) {
    let chrome_out = dir.join("chrome.json");
    let out =
        run(NGS_TRACE, &["chrome", trace.to_str().unwrap(), "--out", chrome_out.to_str().unwrap()]);
    assert_ok(&out, "ngs-trace chrome");
    let chrome = std::fs::read_to_string(&chrome_out).unwrap();
    assert!(chrome.trim_start().starts_with('['), "chrome output is a JSON array");
    assert!(chrome.contains("\"ph\": \"B\""), "chrome output has begin events");

    let out = run(NGS_TRACE, &["summary", trace.to_str().unwrap(), "--top", "5"]);
    assert_ok(&out, "ngs-trace summary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("critical path"), "summary header missing: {stdout}");
}

#[test]
fn reptile_trace_converts_and_covers_required_spans() {
    let dir = test_dir("reptile");
    let (trace, _) = pipeline_trace_roundtrip(
        env!("CARGO_BIN_EXE_reptile-correct"),
        &dir,
        &["--genome-len", "1200"],
        &["reptile.run", "reptile.correct"],
    );
    trace_tools_accept(&trace, &dir);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn redeem_trace_converts_and_covers_required_spans() {
    let dir = test_dir("redeem");
    let (trace, _) = pipeline_trace_roundtrip(
        env!("CARGO_BIN_EXE_redeem-detect"),
        &dir,
        &["--k", "9", "--max-iters", "8"],
        &["redeem.run", "redeem.threshold.fit"],
    );
    trace_tools_accept(&trace, &dir);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn closet_trace_converts_and_covers_required_spans() {
    let dir = test_dir("closet");
    let (trace, _) = pipeline_trace_roundtrip(
        env!("CARGO_BIN_EXE_closet-cluster"),
        &dir,
        &["--workers", "2", "--thresholds", "0.7,0.5"],
        &["closet.run", "closet.sketch", "closet.validate", "closet.cluster"],
    );
    trace_tools_accept(&trace, &dir);
    let _ = std::fs::remove_dir_all(dir);
}

/// Re-serialise a parsed span map as a minimal BENCH report, scaling every
/// total by `factor` — the "same input, deliberately slower" scenario.
fn bench_with_scaled_spans(
    pipeline: &str,
    spans: &std::collections::BTreeMap<String, u64>,
    factor: u64,
) -> String {
    let mut out = format!("{{\"pipeline\": \"{pipeline}\", \"spans\": {{");
    for (i, (name, total)) in spans.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{name}\": {{\"total_ns\": {}}}", total * factor));
    }
    out.push_str("}}");
    out
}

#[test]
fn diff_flags_deliberate_regression_and_update_baseline_blesses_it() {
    let dir = test_dir("diff");
    let (_, metrics) = pipeline_trace_roundtrip(
        env!("CARGO_BIN_EXE_reptile-correct"),
        &dir,
        &["--genome-len", "1200"],
        &["reptile.run", "reptile.correct"],
    );
    let bench = std::fs::read_to_string(&metrics).unwrap();
    let (pipeline, spans) = ngs_observe::diff::parse_bench_spans(&bench).unwrap();

    // Identical reports never regress.
    let out = run(NGS_TRACE, &["diff", metrics.to_str().unwrap(), metrics.to_str().unwrap()]);
    assert_ok(&out, "self-diff");

    // Inflate every span 1000x: with the noise floor lowered this must exit
    // nonzero and name at least one REGRESSED span.
    let slow = dir.join("BENCH_slow.json");
    std::fs::write(&slow, bench_with_scaled_spans(&pipeline, &spans, 1000)).unwrap();
    let out = run(
        NGS_TRACE,
        &["diff", metrics.to_str().unwrap(), slow.to_str().unwrap(), "--min-total-ms", "0"],
    );
    assert_eq!(out.status.code(), Some(1), "inflated run must fail the gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "diff output must flag the regression: {stdout}");

    // A generous per-span tolerance on every span lets the same diff pass.
    let mut relaxed = vec![
        "diff".to_string(),
        metrics.to_str().unwrap().to_string(),
        slow.to_str().unwrap().to_string(),
        "--min-total-ms".to_string(),
        "0".to_string(),
    ];
    for name in spans.keys() {
        relaxed.push("--span-tolerance".to_string());
        relaxed.push(format!("{name}=2000"));
    }
    let relaxed_args: Vec<&str> = relaxed.iter().map(String::as_str).collect();
    assert_ok(&run(NGS_TRACE, &relaxed_args), "per-span tolerance overrides");

    // --update-baseline blesses the slow run: afterwards the diff passes
    // because baseline bytes equal the current report.
    let baseline = dir.join("BENCH_baseline.json");
    std::fs::copy(&metrics, &baseline).unwrap();
    let out = run(
        NGS_TRACE,
        &["diff", baseline.to_str().unwrap(), slow.to_str().unwrap(), "--update-baseline"],
    );
    assert_ok(&out, "--update-baseline");
    assert_eq!(
        std::fs::read(&baseline).unwrap(),
        std::fs::read(&slow).unwrap(),
        "blessing must copy the current report over the baseline"
    );
    let out = run(NGS_TRACE, &["diff", baseline.to_str().unwrap(), slow.to_str().unwrap()]);
    assert_ok(&out, "diff after blessing");
    let _ = std::fs::remove_dir_all(dir);
}

/// A minimal v2-style BENCH report: fixed wall times, per-span peak bytes.
fn bench_with_alloc(pipeline: &str, spans: &[(&str, u64, u64)]) -> String {
    let mut out = format!("{{\"pipeline\": \"{pipeline}\", \"schema_version\": 2, \"spans\": {{");
    for (i, (name, total_ns, peak)) in spans.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "\"{name}\": {{\"total_ns\": {total_ns}, \"alloc_peak_bytes\": {peak}}}"
        ));
    }
    out.push_str("}}");
    out
}

/// The memory axis is independent of wall time: a report whose spans keep
/// their exact wall times but double their peak allocation must fail the
/// gate, name the memory regression, and pass again under a generous
/// `--mem-tolerance`.
#[test]
fn diff_fails_on_memory_axis_while_wall_time_is_identical() {
    let dir = test_dir("memdiff");
    const MB: u64 = 1 << 20;
    let baseline = dir.join("BENCH_base.json");
    let blown = dir.join("BENCH_blown.json");
    std::fs::write(
        &baseline,
        bench_with_alloc(
            "demo",
            &[("demo.build", 40_000_000, 32 * MB), ("demo.run", 60_000_000, 64 * MB)],
        ),
    )
    .unwrap();
    std::fs::write(
        &blown,
        bench_with_alloc(
            "demo",
            &[("demo.build", 40_000_000, 32 * MB), ("demo.run", 60_000_000, 128 * MB)],
        ),
    )
    .unwrap();

    let out = run(NGS_TRACE, &["diff", baseline.to_str().unwrap(), blown.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "doubled peak must fail the gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MEM REGRESSED"), "must flag the memory axis: {stdout}");
    assert!(stdout.contains("0 span(s) regressed on wall time"), "wall axis stays green: {stdout}");

    // A tolerance that admits a 2x peak lets the same diff pass.
    let out = run(
        NGS_TRACE,
        &["diff", baseline.to_str().unwrap(), blown.to_str().unwrap(), "--mem-tolerance", "1.5"],
    );
    assert_ok(&out, "generous --mem-tolerance");

    // A v1 baseline (no alloc fields) skips the memory axis entirely.
    let v1 = dir.join("BENCH_v1.json");
    std::fs::write(
        &v1,
        "{\"pipeline\": \"demo\", \"spans\": {\
          \"demo.build\": {\"total_ns\": 40000000}, \
          \"demo.run\": {\"total_ns\": 60000000}}}",
    )
    .unwrap();
    let out = run(NGS_TRACE, &["diff", v1.to_str().unwrap(), blown.to_str().unwrap()]);
    assert_ok(&out, "v1 baseline skips the memory comparison");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn malformed_trace_is_rejected_with_exit_2() {
    let dir = test_dir("malformed");
    let bad = dir.join("bad.jsonl");
    std::fs::write(
        &bad,
        "{\"schema_version\": 1, \"kind\": \"ngs-trace\", \"unit\": \"ns\"}\n\
         {\"ev\": \"B\", \"seq\": 0, \"id\": 1, \"parent\": 0, \"name\": \"dangling\", \
          \"detail\": \"\", \"tid\": 0, \"ts_ns\": 5}\n",
    )
    .unwrap();
    let out = run(NGS_TRACE, &["chrome", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "dangling span must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed"), "error should say malformed: {stderr}");
    let _ = std::fs::remove_dir_all(dir);
}
