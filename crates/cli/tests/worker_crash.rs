//! Crash-survivability matrix for the multi-process MapReduce pool, run
//! against the real `ngs-mr-worker` binary (true SIGKILL, true process
//! respawn — not the thread-mode shim the unit tests use).
//!
//! The contract under test: for EVERY (stage, task) coordinate, a worker
//! SIGKILLed while holding that task's lease must not change a single
//! output byte versus an unfaulted in-process run, and the driver's
//! stats must show the death, the respawn, and the lease reassignment.

use closet::PairCountSpec;
use mapreduce_lite::{run_local, run_pooled, FaultKind, FaultPlan, JobConfig, PoolConfig, Stage};
use std::time::{Duration, Instant};

fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_ngs-mr-worker").to_string()]
}

fn process_pool(workers: usize) -> PoolConfig {
    PoolConfig::with_worker_cmd(workers, worker_cmd())
}

/// Sketch groups with overlapping membership, so Task 2 produces pair
/// counts > 1 and every reduce partition has real work.
fn groups() -> Vec<(u64, Vec<u32>)> {
    (0..12u64)
        .map(|g| {
            let len = 3 + (g % 4) as u32;
            (100 + g, (0..len).map(|i| (g as u32 * 3 + i) % 10).collect())
        })
        .collect()
}

fn base_cfg() -> JobConfig {
    let mut cfg = JobConfig::with_workers(2);
    cfg.reduce_partitions = 3;
    cfg.retry_backoff = Duration::from_millis(1);
    cfg
}

#[test]
fn unfaulted_pooled_run_matches_in_process_bytes() {
    let input = groups();
    let cfg = base_cfg();
    let (clean, _) = run_local(&PairCountSpec, &input, &cfg).expect("local");
    let (pooled, stats) =
        run_pooled(&PairCountSpec, &input, &cfg, &process_pool(2)).expect("pooled");
    assert_eq!(pooled, clean);
    assert_eq!(stats.worker_deaths, 0);
    assert_eq!(stats.task_failures, 0);
    // Sanity: the job actually counted overlapping pairs.
    assert!(clean.iter().any(|&(_, n)| n > 1), "{clean:?}");
}

#[test]
fn sigkill_at_every_stage_task_coordinate_is_survivable() {
    let input = groups();
    let cfg = base_cfg();
    let (clean, _) = run_local(&PairCountSpec, &input, &cfg).expect("local");
    // 2 map tasks (one per worker chunk), 3 shuffle + 3 reduce tasks (one
    // per partition): the full coordinate space of this job shape.
    for (stage, tasks) in [(Stage::Map, 2), (Stage::Shuffle, 3), (Stage::Reduce, 3)] {
        for task in 0..tasks {
            let mut faulty = base_cfg();
            faulty.fault_plan = FaultPlan::none().with_fault(stage, task, 0, FaultKind::KillWorker);
            let (pooled, stats) = run_pooled(&PairCountSpec, &input, &faulty, &process_pool(2))
                .unwrap_or_else(|e| panic!("{stage:?} task {task}: {e}"));
            assert_eq!(pooled, clean, "output diverged after SIGKILL at {stage:?} task {task}");
            assert!(stats.worker_deaths >= 1, "{stage:?} task {task}: no death recorded");
            assert!(stats.tasks_reassigned >= 1, "{stage:?} task {task}: lease not reassigned");
            assert_eq!(stats.workers_respawned, stats.worker_deaths);
            // A reassignment is also a failure + retry, per the JobStats
            // contract.
            assert!(stats.task_failures >= stats.tasks_reassigned);
            assert!(stats.retried_tasks >= 1);
        }
    }
}

#[test]
fn stalled_worker_process_is_detected_by_heartbeat_deadline() {
    let input = groups();
    let mut faulty = base_cfg();
    faulty.fault_plan = FaultPlan::none().with_fault(Stage::Map, 1, 0, FaultKind::StallHeartbeat);
    let cfg = base_cfg();
    let (clean, _) = run_local(&PairCountSpec, &input, &cfg).expect("local");
    let mut pool = process_pool(2);
    pool.heartbeat_interval = Duration::from_millis(20);
    pool.heartbeat_timeout = Duration::from_millis(400);
    let started = Instant::now();
    let (pooled, stats) = run_pooled(&PairCountSpec, &input, &faulty, &pool).expect("pooled");
    let elapsed = started.elapsed();
    assert_eq!(pooled, clean);
    assert!(stats.worker_deaths >= 1, "stalled worker never declared dead");
    assert!(stats.tasks_reassigned >= 1);
    // Detection must come from the 400 ms heartbeat deadline, nowhere
    // near the 60 s lease timeout.
    assert!(elapsed < Duration::from_secs(30), "detection took {elapsed:?}");
}

#[test]
fn closet_cluster_cli_is_byte_identical_with_worker_processes() {
    let dir = std::env::temp_dir().join(format!("ngs_worker_crash_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let input = dir.join("reads.fasta");
    std::fs::write(&input, synthetic_fasta()).expect("write input");
    let run = |out: &str, extra: &[&str]| {
        let out_path = dir.join(out);
        // Each run also writes its event trace: on a CI failure the
        // workdir (and these JSONL files, worker/task spans included) is
        // uploaded as the debugging artifact.
        let trace_path = dir.join(format!("{out}.trace.jsonl"));
        let status = std::process::Command::new(env!("CARGO_BIN_EXE_closet-cluster"))
            .arg("--input")
            .arg(&input)
            .arg("--output")
            .arg(&out_path)
            .arg("--trace-jsonl")
            .arg(&trace_path)
            .args(["--workers", "2", "--thresholds", "0.8,0.6"])
            .args(extra)
            .status()
            .expect("spawn closet-cluster");
        assert!(status.success(), "closet-cluster {extra:?} exited {status}");
        assert!(trace_path.exists(), "no trace written for {out}");
        std::fs::read(&out_path).expect("read output")
    };
    let inproc = run("inproc.tsv", &[]);
    let pooled = run("pooled.tsv", &["--mr-workers", "2"]);
    let pooled_trace =
        std::fs::read_to_string(dir.join("pooled.tsv.trace.jsonl")).expect("read trace");
    assert!(pooled_trace.contains("mapreduce.worker.0"), "pooled trace lacks worker spans");
    assert_eq!(pooled, inproc, "--mr-workers must not change a single output byte");
    assert!(!inproc.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Four divergent "genes", four near-identical reads each: enough signal
/// for CLOSET to form clusters at the test thresholds.
fn synthetic_fasta() -> String {
    let mut out = String::new();
    for gene in 0..4u64 {
        let mut state = 0x9E37_79B9u64.wrapping_mul(gene + 1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let gene_seq: Vec<u8> = (0..240).map(|_| b"ACGT"[next() % 4]).collect();
        for copy in 0..4usize {
            let mut read = gene_seq.clone();
            // One substitution per copy keeps same-gene reads similar.
            let pos = 20 + copy * 37;
            read[pos] = b"TGCA"[(read[pos] as usize + copy) % 4];
            out.push_str(&format!(">g{gene}c{copy}\n"));
            out.push_str(std::str::from_utf8(&read).unwrap());
            out.push('\n');
        }
    }
    out
}
