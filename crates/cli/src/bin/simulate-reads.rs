//! Generate a synthetic dataset with ground truth (the §3.4.1 protocol).

use ngs_cli::{run_main, usage_gate, write_sequences, Args};
use ngs_core::{Read, Result};
use ngs_simulate::{simulate_reads, ErrorModel, GenomeSpec, ReadSimConfig, RepeatClass};
use std::io::Write;

const USAGE: &str = "simulate-reads — synthetic genome + Illumina-style reads with truth

USAGE:
  simulate-reads --output reads.fastq [options]

OPTIONS:
  --output PATH        reads output (.fastq or .fasta)      [required]
  --genome-out PATH    also write the genome FASTA
  --truth-out PATH     also write per-read truth TSV
  --genome-len N       genome length                        [default: 100000]
  --repeat-len N       repeat unit length (0 = no repeats)  [default: 0]
  --repeat-mult N      repeat copies                        [default: 0]
  --read-len N         read length                          [default: 36]
  --coverage F         coverage                             [default: 60]
  --error-rate F       average per-base error rate          [default: 0.01]
  --uniform-errors     flat error profile instead of the Illumina ramp
  --n-rate F           ambiguous-base injection rate        [default: 0]
  --seed N             RNG seed                             [default: 42]
  --help               print this message";

fn main() {
    run_main(real_main());
}

fn real_main() -> Result<()> {
    let args = Args::parse(std::env::args().skip(1))?;
    usage_gate(&args, USAGE);
    let output = args.require("output")?;
    let genome_len: usize = args.get_parsed("genome-len", 100_000)?;
    let repeat_len: usize = args.get_parsed("repeat-len", 0)?;
    let repeat_mult: usize = args.get_parsed("repeat-mult", 0)?;
    let read_len: usize = args.get_parsed("read-len", 36)?;
    let coverage: f64 = args.get_parsed("coverage", 60.0)?;
    let error_rate: f64 = args.get_parsed("error-rate", 0.01)?;
    let n_rate: f64 = args.get_parsed("n-rate", 0.0)?;
    let seed: u64 = args.get_parsed("seed", 42)?;

    let repeats = if repeat_len > 0 && repeat_mult > 0 {
        vec![RepeatClass { length: repeat_len, multiplicity: repeat_mult }]
    } else {
        Vec::new()
    };
    let genome = GenomeSpec::with_repeats(genome_len, repeats).generate(seed);
    eprintln!("genome: {} bp, {:.1}% repeats", genome.len(), 100.0 * genome.repeat_fraction());

    let error_model = if args.has_flag("uniform-errors") {
        ErrorModel::uniform(read_len, error_rate)
    } else {
        ErrorModel::illumina_like(read_len, error_rate)
    };
    let mut cfg = ReadSimConfig::with_coverage(genome.len(), read_len, coverage, error_model, seed);
    cfg.n_rate = n_rate;
    let sim = simulate_reads(&genome.seq, &cfg);
    eprintln!(
        "simulated {} reads ({:.1}x, observed error rate {:.3}%)",
        sim.reads.len(),
        sim.coverage(genome.len()),
        100.0 * sim.error_rate()
    );
    write_sequences(output, &sim.reads)?;
    eprintln!("wrote {output}");

    if let Some(path) = args.get("genome-out") {
        write_sequences(path, &[Read::new("genome", &genome.seq)])?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.get("truth-out") {
        let mut file = ngs_durable::AtomicFile::create(path)?;
        let mut out = std::io::BufWriter::new(&mut file);
        writeln!(out, "read\tpos\tstrand\terrors\ttrue_seq")?;
        for (read, truth) in sim.reads.iter().zip(&sim.truth) {
            writeln!(
                out,
                "{}\t{}\t{}\t{}\t{}",
                read.id,
                truth.genome_pos,
                if truth.reverse_strand { '-' } else { '+' },
                truth.error_positions.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(","),
                String::from_utf8_lossy(&truth.true_seq),
            )?;
        }
        out.flush()?;
        drop(out);
        file.commit()?;
        eprintln!("wrote {path}");
    }
    Ok(())
}
