//! Correct a read file with Reptile (Chapter 2).

use ngs_cli::{pipelines, run_main, usage_gate, Args};
use ngs_core::Result;

/// Registered at compile time; counts nothing until `--profile-mem` flips
/// it on (see `ngs_observe::alloc`).
#[global_allocator]
static ALLOC: ngs_observe::alloc::TrackingAllocator = ngs_observe::alloc::TrackingAllocator;

const USAGE: &str = "reptile-correct — tile-based short-read error correction

USAGE:
  reptile-correct --input reads.fastq --output corrected.fastq [options]

OPTIONS:
  --input PATH          input reads (.fastq or .fasta)        [required]
  --output PATH         corrected reads                        [required]
  --genome-len N        genome length estimate (sets k)        [default: 1000000]
  --k N                 k-mer length override (1..=16)
  --d N                 max Hamming distance (1 or 2)          [default: 1]
  --checkpoint-dir DIR  persist the Phase-1 index here
  --resume              reload a valid checkpoint instead of rebuilding
  --max-bad-records N   skip up to N malformed input records   [default: 0 = fail fast]
  --crash-after STAGE   test hook: exit(42) after STAGE checkpoints (stage: index)
  --metrics-json PATH   write a BENCH_reptile.json metrics report here
  --trace-jsonl PATH    write an event trace here (view with ngs-trace)
  --profile-mem         track allocations (alloc fields in metrics/resources)
  --resource-jsonl PATH write a sampled resource timeline (RSS, CPU, alloc) here
  --threads N           parallel runtime threads (also: NGS_THREADS env) [default: all cores]
  --progress            print throughput/ETA heartbeat lines (auto on a TTY)
  --help                print this message";

fn main() {
    run_main(real_main());
}

fn real_main() -> Result<()> {
    let args = Args::parse(std::env::args().skip(1))?;
    usage_gate(&args, USAGE);
    pipelines::reptile_correct(&args)
}
