//! Correct a read file with Reptile (Chapter 2).

use ngs_cli::{
    emit_metrics, metrics_collector, read_sequences, run_main, usage_gate, write_sequences, Args,
};
use ngs_core::Result;
use reptile::{Reptile, ReptileParams};

const USAGE: &str = "reptile-correct — tile-based short-read error correction

USAGE:
  reptile-correct --input reads.fastq --output corrected.fastq [options]

OPTIONS:
  --input PATH        input reads (.fastq or .fasta)        [required]
  --output PATH       corrected reads                        [required]
  --genome-len N      genome length estimate (sets k)        [default: 1000000]
  --k N               k-mer length override (1..=16)
  --d N               max Hamming distance (1 or 2)          [default: 1]
  --metrics-json PATH write a BENCH_reptile.json metrics report here
  --help              print this message";

/// Spans every instrumented run must produce (the smoke-bench gate).
const REQUIRED_SPANS: &[&str] = &[
    "reptile.build.spectrum",
    "reptile.build.tiles",
    "reptile.build.neighbor_index",
    "reptile.correct",
];

fn main() {
    run_main(real_main());
}

fn real_main() -> Result<()> {
    let args = Args::parse(std::env::args().skip(1))?;
    usage_gate(&args, USAGE);
    let input = args.require("input")?;
    let output = args.require("output")?;
    let genome_len: usize = args.get_parsed("genome-len", 1_000_000)?;

    let reads = read_sequences(input)?;
    eprintln!("read {} sequences from {input}", reads.len());

    let mut params = ReptileParams::from_data(&reads, genome_len);
    if let Some(k) = args.get("k") {
        params.k = k
            .parse()
            .map_err(|_| ngs_core::NgsError::InvalidParameter(format!("--k: bad value {k:?}")))?;
    }
    params.d = args.get_parsed("d", params.d)?;
    eprintln!(
        "parameters: k={} d={} |t|={} Cg={} Cm={} Qc={}",
        params.k,
        params.d,
        params.tile_len(),
        params.cg,
        params.cm,
        params.qc
    );

    let collector = metrics_collector(&args);
    let t0 = std::time::Instant::now();
    let (corrected, stats) = Reptile::run_observed(&reads, params, &collector);
    eprintln!(
        "corrected in {:.2?}: {} bases changed in {} reads \
         ({} tiles validated, {} corrected, {} unresolved)",
        t0.elapsed(),
        stats.bases_changed,
        stats.reads_changed,
        stats.tiles_validated,
        stats.tiles_corrected,
        stats.tiles_unresolved
    );
    write_sequences(output, &corrected)?;
    eprintln!("wrote {output}");
    emit_metrics(&args, &collector, "reptile", REQUIRED_SPANS)?;
    Ok(())
}
