//! `ngs-mr-worker` — standalone MapReduce worker process.
//!
//! Normally the pool re-execs the *driver* binary in its hidden
//! `--mr-worker` mode, so driver and workers are guaranteed the same
//! build. This dedicated binary exists for harnesses that point
//! `PoolConfig::worker_cmd` somewhere explicit (the worker-crash CI
//! matrix does, via `CARGO_BIN_EXE_ngs-mr-worker`) and as the documented
//! shape of the worker protocol: connect to the driver's socket, say
//! Hello, serve task attempts until drained.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(ngs_cli::mr_worker_main(&argv));
}
