//! de Bruijn unitig assembly (the downstream validator of §1.1/§5).

use ngs_assembly::{assemble, AssemblyParams};
use ngs_cli::{read_sequences, run_main, usage_gate, write_sequences, Args};
use ngs_core::{Read, Result};

const USAGE: &str = "assemble — minimal de Bruijn unitig assembler

USAGE:
  assemble --input reads.fastq --output unitigs.fasta [options]

OPTIONS:
  --input PATH        input reads (.fastq or .fasta)   [required]
  --output PATH       unitig FASTA                      [required]
  --k N               de Bruijn k                       [default: 21]
  --min-count N       solid k-mer threshold             [default: 2]
  --help              print this message";

fn main() {
    run_main(real_main());
}

fn real_main() -> Result<()> {
    let args = Args::parse(std::env::args().skip(1))?;
    usage_gate(&args, USAGE);
    let input = args.require("input")?;
    let output = args.require("output")?;
    let reads = read_sequences(input)?;
    let k: usize = args.get_parsed("k", 21)?;
    let min_count: u32 = args.get_parsed("min-count", 2)?;

    let t0 = std::time::Instant::now();
    let asm = assemble(&reads, AssemblyParams { k, min_count });
    let stats = asm.stats();
    eprintln!(
        "assembled {} reads in {:.2?}: {} unitigs, {} bp total, N50 {}, max {}",
        reads.len(),
        t0.elapsed(),
        stats.count,
        stats.total_len,
        stats.n50,
        stats.max_len
    );

    let records: Vec<Read> = asm
        .unitigs
        .iter()
        .enumerate()
        .map(|(i, u)| Read::new(format!("unitig_{i} len={}", u.len()), u))
        .collect();
    write_sequences(output, &records)?;
    eprintln!("wrote {output}");
    Ok(())
}
