//! Closed-loop load generator and latency bench for `ngs-serve`.

use ngs_cli::{run_main, serving, usage_gate, Args};
use ngs_core::Result;

/// Registered at compile time; counts nothing until `--profile-mem` flips
/// it on (see `ngs_observe::alloc`).
#[global_allocator]
static ALLOC: ngs_observe::alloc::TrackingAllocator = ngs_observe::alloc::TrackingAllocator;

const USAGE: &str = "ngs-loadgen — closed-loop load generator for ngs-serve

Runs a swarm of clients against a server (a running one via --connect, or
an in-process one built from --input) and reports latency quantiles. With
--metrics-json the p50/p90/p99 land in the BENCH_serve.json schema, so
`ngs-trace diff` can gate regressions against a blessed baseline.

USAGE:
  ngs-loadgen --input reads.fastq [--connect ENDPOINT] [options]

OPTIONS:
  --input PATH            reads to batch into requests            [required]
  --connect ENDPOINT      target a running server (default: in-process)
  --clients N             concurrent closed-loop clients          [default: 2]
  --requests-per-client N requests each client issues             [default: 20]
  --batch-size N          reads per request                       [default: 32]
  --deadline-ms N         per-request deadline budget (0 = server default)
  --max-attempts N        tries per request (first + retries)     [default: 8]
  --base-backoff-ms N     base of the jittered backoff            [default: 10]
  --max-backoff-ms N      ceiling for a single backoff sleep      [default: 2000]
  --seed N                jitter seed (varied per client)         [default: 24301]
  In-process server tuning (ignored with --connect):
  --genome-len N, --k N, --d N, --workers N, --queue-capacity N,
  --default-deadline-ms N, --max-reads-per-request N, --checkpoint-dir DIR,
  --resume
  --max-bad-records N     skip up to N malformed input records    [default: 0 = fail fast]
  --metrics-json PATH     write a BENCH_serve.json metrics report here
  --trace-jsonl PATH      write an event trace here (view with ngs-trace)
  --profile-mem           track allocations
  --resource-jsonl PATH   write a sampled resource timeline here
  --threads N             parallel runtime threads (also: NGS_THREADS env)
  --progress              print throughput/ETA heartbeat lines (auto on a TTY)
  --help                  print this message";

fn main() {
    run_main(real_main());
}

fn real_main() -> Result<()> {
    let args = Args::parse(std::env::args().skip(1))?;
    usage_gate(&args, USAGE);
    serving::loadgen_main(&args)
}
