//! Batch client for `ngs-serve`: correct a read file over the socket in
//! batches, with jittered retry/backoff on `Overloaded` and torn
//! connections (requests are idempotent, so a retry is always safe).

use ngs_cli::{run_main, serving, usage_gate, Args};
use ngs_core::Result;

/// Registered at compile time; counts nothing until `--profile-mem` flips
/// it on (see `ngs_observe::alloc`).
#[global_allocator]
static ALLOC: ngs_observe::alloc::TrackingAllocator = ngs_observe::alloc::TrackingAllocator;

const USAGE: &str = "ngs-client — batch client for ngs-serve

USAGE:
  ngs-client --connect unix:/tmp/ngs.sock --input reads.fastq --output corrected.fastq
  ngs-client --connect tcp:127.0.0.1:7878 --ping
  ngs-client --connect tcp:127.0.0.1:7878 --stats --watch 2

OPTIONS:
  --connect ENDPOINT    unix:/path/to.sock or tcp:host:port       [required]
  --ping                probe the server (prints its index k and size) and exit
  --stats               print a live server snapshot (queue, latency percentiles,
                        RSS, uptime) and exit
  --watch N             with --stats: refresh every N seconds until interrupted
  --samples N           with --watch: stop after N snapshots (0 = forever)
  --input PATH          reads to correct (.fastq or .fasta)
  --output PATH         corrected reads (written atomically)
  --batch-size N        reads per request                         [default: 512]
  --deadline-ms N       per-request deadline budget (0 = server default)
  --max-attempts N      tries per request (first + retries)       [default: 8]
  --base-backoff-ms N   base of the jittered exponential backoff  [default: 10]
  --max-backoff-ms N    ceiling for a single backoff sleep        [default: 2000]
  --seed N              jitter seed                               [default: 24301]
  --max-bad-records N   skip up to N malformed input records      [default: 0 = fail fast]
  --help                print this message";

fn main() {
    run_main(real_main());
}

fn real_main() -> Result<()> {
    let args = Args::parse(std::env::args().skip(1))?;
    usage_gate(&args, USAGE);
    serving::client_main(&args)
}
