//! Trace and benchmark tooling over the `ngs-observe` artifacts:
//!
//! * `chrome` — convert a `--trace-jsonl` trace to Chrome `chrome://tracing`
//!   JSON (also loads in Perfetto);
//! * `summary` — validate a trace and print the top-N spans by *self* time
//!   (duration minus direct children — the critical-path view);
//! * `diff` — compare two `BENCH_*.json` reports with per-span tolerance
//!   thresholds; exits 1 on regressions (the CI `perf-gate` contract), and
//!   `--update-baseline` re-blesses the baseline instead for intentional
//!   performance changes.
//!
//! Subcommands take positional file arguments, so this binary parses its
//! command line by hand instead of through `ngs_cli::Args` (which is
//! `--key value` only).

use std::process::ExitCode;

const USAGE: &str = "ngs-trace — trace viewer and benchmark diff tool

USAGE:
  ngs-trace chrome TRACE.jsonl [--out FILE.json]
  ngs-trace summary TRACE.jsonl [--top N]
  ngs-trace merge PROC1.jsonl PROC2.jsonl ... --out MERGED.jsonl [--chrome FILE.json]
  ngs-trace flamegraph IN.folded [MORE.folded ...] [--out FILE.svg] [--collapsed FILE.folded]
  ngs-trace diff BASELINE.json CURRENT.json [options]

FLAMEGRAPH:
  Render one or more collapsed-stack profiles (the `PROFILE_*.folded`
  files `--profile-cpu` writes) as a self-contained SVG flamegraph.
  Multiple inputs are merged by summing counts per stack; the output is
  independent of argument order. --out writes the SVG (default stdout);
  --collapsed additionally writes the merged folded file for external
  tooling.

MERGE:
  Stitch per-process traces (e.g. the `trace.jsonl.driver` and
  `trace.jsonl.worker*` components a pooled run emits) into one
  well-formed timeline: each file's clock offset is applied, colliding
  span ids are remapped, and the output is independent of argument
  order. --chrome additionally writes a Chrome/Perfetto export with one
  lane per process.

DIFF OPTIONS:
  --tolerance FRAC        allowed fractional growth per span [default: 0.15]
  --min-total-ms MS       ignore spans below this total time [default: 1.0]
  --span-tolerance N=F    per-span tolerance override (repeatable),
                          e.g. --span-tolerance closet.validate=0.5
  --mem-tolerance FRAC    allowed fractional peak-memory growth per span
                          [default: 0.20] (spans without alloc figures on
                          either side skip the memory comparison)
  --min-alloc-mb MB       ignore spans whose peaks are below this [default: 1.0]
  --update-baseline       overwrite BASELINE with CURRENT (bless an
                          intentional perf or memory change) instead of diffing

EXIT CODES:
  0  success / no regressions
  1  regressions found (diff only)
  2  usage, I/O or parse error";

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") || argv.is_empty() {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match argv[0].as_str() {
        "chrome" => cmd_chrome(&argv[1..]),
        "summary" => cmd_summary(&argv[1..]),
        "merge" => cmd_merge(&argv[1..]),
        "flamegraph" => cmd_flamegraph(&argv[1..]),
        "diff" => cmd_diff(&argv[1..]),
        other => fail(&format!("unknown subcommand {other:?} (try --help)")),
    }
}

/// `--key [value]` options in command-line order.
type Opts<'a> = Vec<(&'a str, Option<&'a str>)>;

/// Split `rest` into positional operands and `--key [value]` options.
fn split_opts(rest: &[String]) -> Result<(Vec<&str>, Opts<'_>), String> {
    let mut positional = Vec::new();
    let mut opts = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        if let Some(key) = rest[i].strip_prefix("--") {
            let takes_value = !matches!(key, "update-baseline");
            if takes_value {
                let value =
                    rest.get(i + 1).map(String::as_str).ok_or(format!("--{key} needs a value"))?;
                opts.push((key, Some(value)));
                i += 2;
            } else {
                opts.push((key, None));
                i += 1;
            }
        } else {
            positional.push(rest[i].as_str());
            i += 1;
        }
    }
    Ok((positional, opts))
}

fn load_trace(path: &str) -> Result<ngs_observe::traceview::ParsedTrace, String> {
    ngs_observe::traceview::parse_jsonl(&read(path)?).map_err(|e| format!("{path}: {e}"))
}

fn cmd_chrome(rest: &[String]) -> ExitCode {
    let (positional, opts) = match split_opts(rest) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let [trace_path] = positional[..] else {
        return fail("usage: ngs-trace chrome TRACE.jsonl [--out FILE.json]");
    };
    let mut out_path: Option<&str> = None;
    for (key, value) in opts {
        match key {
            "out" => out_path = value,
            _ => return fail(&format!("unknown option --{key}")),
        }
    }
    let trace = match load_trace(trace_path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    if let Err(e) = ngs_observe::traceview::check_well_formed(&trace) {
        return fail(&format!("{trace_path}: malformed trace: {e}"));
    }
    let chrome = ngs_observe::traceview::to_chrome_json(&trace);
    match out_path {
        Some(path) => {
            if let Err(e) = ngs_durable::write_atomic(path, chrome.as_bytes()) {
                return fail(&format!("write {path}: {e}"));
            }
            eprintln!("wrote {} events to {path}", trace.events.len());
        }
        None => print!("{chrome}"),
    }
    ExitCode::SUCCESS
}

fn cmd_summary(rest: &[String]) -> ExitCode {
    let (positional, opts) = match split_opts(rest) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let [trace_path] = positional[..] else {
        return fail("usage: ngs-trace summary TRACE.jsonl [--top N]");
    };
    let mut top = 20usize;
    for (key, value) in opts {
        match key {
            "top" => match value.and_then(|v| v.parse().ok()) {
                Some(n) => top = n,
                None => return fail("--top: not a number"),
            },
            _ => return fail(&format!("unknown option --{key}")),
        }
    }
    let trace = match load_trace(trace_path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let spans = match ngs_observe::traceview::check_well_formed(&trace) {
        Ok(s) => s,
        Err(e) => return fail(&format!("{trace_path}: malformed trace: {e}")),
    };
    let rows = ngs_observe::traceview::self_time_summary(&spans);
    println!(
        "== critical path: {} spans, top {} by self time ==",
        spans.len(),
        top.min(rows.len())
    );
    print!("{}", ngs_observe::traceview::render_summary(&rows, top));
    ExitCode::SUCCESS
}

fn cmd_merge(rest: &[String]) -> ExitCode {
    let (positional, opts) = match split_opts(rest) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    if positional.is_empty() {
        return fail(
            "usage: ngs-trace merge PROC1.jsonl ... --out MERGED.jsonl [--chrome FILE.json]",
        );
    }
    let mut out_path: Option<&str> = None;
    let mut chrome_path: Option<&str> = None;
    for (key, value) in opts {
        match key {
            "out" => out_path = value,
            "chrome" => chrome_path = value,
            _ => return fail(&format!("unknown option --{key}")),
        }
    }
    let mut inputs = Vec::with_capacity(positional.len());
    for path in &positional {
        match load_trace(path) {
            Ok(t) => inputs.push(t),
            Err(e) => return fail(&e),
        }
    }
    let merged = match ngs_observe::traceview::merge_traces(&inputs) {
        Ok(m) => m,
        Err(e) => return fail(&format!("merge: {e}")),
    };
    // A merge that produces an ill-formed timeline is a bug worth failing
    // on, not a file worth writing.
    if let Err(e) = ngs_observe::traceview::check_well_formed(&merged) {
        return fail(&format!("merged trace is malformed: {e}"));
    }
    let jsonl = ngs_observe::trace::render_jsonl(&merged.events, &merged.meta);
    match out_path {
        Some(path) => {
            if let Err(e) = ngs_durable::write_atomic(path, jsonl.as_bytes()) {
                return fail(&format!("write {path}: {e}"));
            }
            eprintln!(
                "merged {} file(s), {} events ({} process(es)) into {path}",
                positional.len(),
                merged.events.len(),
                merged
                    .events
                    .iter()
                    .map(|e| e.pid)
                    .collect::<std::collections::BTreeSet<_>>()
                    .len()
            );
        }
        None => print!("{jsonl}"),
    }
    if let Some(path) = chrome_path {
        let chrome = ngs_observe::traceview::to_chrome_json(&merged);
        if let Err(e) = ngs_durable::write_atomic(path, chrome.as_bytes()) {
            return fail(&format!("write {path}: {e}"));
        }
        eprintln!("wrote Chrome export to {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_flamegraph(rest: &[String]) -> ExitCode {
    let (positional, opts) = match split_opts(rest) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    if positional.is_empty() {
        return fail(
            "usage: ngs-trace flamegraph IN.folded [MORE.folded ...] \
             [--out FILE.svg] [--collapsed FILE.folded]",
        );
    }
    let mut out_path: Option<&str> = None;
    let mut collapsed_path: Option<&str> = None;
    for (key, value) in opts {
        match key {
            "out" => out_path = value,
            "collapsed" => collapsed_path = value,
            _ => return fail(&format!("unknown option --{key}")),
        }
    }
    let mut inputs = Vec::with_capacity(positional.len());
    for path in &positional {
        let text = match read(path) {
            Ok(t) => t,
            Err(e) => return fail(&e),
        };
        match ngs_observe::profile::parse_folded(&text) {
            Ok(folded) => inputs.push(folded),
            Err(e) => return fail(&format!("{path}: {e}")),
        }
    }
    let merged = ngs_observe::profile::merge_folded(inputs);
    let total: u64 = merged.values().sum();
    if let Some(path) = collapsed_path {
        let text = ngs_observe::profile::render_folded(&merged);
        if let Err(e) = ngs_durable::write_atomic(path, text.as_bytes()) {
            return fail(&format!("write {path}: {e}"));
        }
        eprintln!("wrote merged collapsed stacks to {path}");
    }
    let svg = ngs_observe::profile::flamegraph_svg(&merged);
    match out_path {
        Some(path) => {
            if let Err(e) = ngs_durable::write_atomic(path, svg.as_bytes()) {
                return fail(&format!("write {path}: {e}"));
            }
            eprintln!(
                "rendered {} stack(s), {total} sample(s) from {} file(s) into {path}",
                merged.len(),
                positional.len()
            );
        }
        None => print!("{svg}"),
    }
    ExitCode::SUCCESS
}

fn cmd_diff(rest: &[String]) -> ExitCode {
    let (positional, opts) = match split_opts(rest) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let [baseline_path, current_path] = positional[..] else {
        return fail("usage: ngs-trace diff BASELINE.json CURRENT.json [options]");
    };
    let mut cfg = ngs_observe::diff::DiffConfig::default();
    let mut update_baseline = false;
    for (key, value) in opts {
        match key {
            "tolerance" => match value.and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => cfg.tolerance = t,
                _ => return fail("--tolerance: not a non-negative number"),
            },
            "min-total-ms" => match value.and_then(|v| v.parse::<f64>().ok()) {
                Some(ms) if ms >= 0.0 => cfg.min_total_ns = (ms * 1e6) as u64,
                _ => return fail("--min-total-ms: not a non-negative number"),
            },
            "mem-tolerance" => match value.and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => cfg.mem_tolerance = t,
                _ => return fail("--mem-tolerance: not a non-negative number"),
            },
            "min-alloc-mb" => match value.and_then(|v| v.parse::<f64>().ok()) {
                Some(mb) if mb >= 0.0 => cfg.min_alloc_bytes = (mb * 1024.0 * 1024.0) as u64,
                _ => return fail("--min-alloc-mb: not a non-negative number"),
            },
            "span-tolerance" => {
                let Some((name, frac)) = value.and_then(|v| v.split_once('=')) else {
                    return fail("--span-tolerance: expected NAME=FRACTION");
                };
                match frac.parse::<f64>() {
                    Ok(f) if f >= 0.0 => {
                        cfg.per_span.insert(name.to_string(), f);
                    }
                    _ => return fail("--span-tolerance: bad fraction"),
                }
            }
            "update-baseline" => update_baseline = true,
            _ => return fail(&format!("unknown option --{key}")),
        }
    }

    let current = match read(current_path) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    if update_baseline {
        // Validate before blessing: a broken report must not become the
        // baseline future runs are held to.
        if let Err(e) = ngs_observe::diff::parse_bench_spans(&current) {
            return fail(&format!("{current_path}: {e}"));
        }
        // …and spans that violate the count/total/min/max invariants
        // (hand-edited envelope figures) never become a baseline.
        if let Err(violations) = ngs_observe::diff::validate_bench_invariants(&current) {
            return fail(&format!(
                "{current_path}: span invariant violations:\n  {}",
                violations.join("\n  ")
            ));
        }
        if let Err(e) = ngs_durable::write_atomic(baseline_path, current.as_bytes()) {
            return fail(&format!("write {baseline_path}: {e}"));
        }
        eprintln!("updated baseline {baseline_path} from {current_path}");
        return ExitCode::SUCCESS;
    }
    let baseline = match read(baseline_path) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    match ngs_observe::diff::diff_bench_json(&baseline, &current, &cfg) {
        Err(e) => fail(&e),
        Ok(report) => {
            print!("{}", report.render());
            if report.has_regressions() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
    }
}
