//! REDEEM EM over a read set (Chapter 3): emit per-k-mer observed counts
//! `Y`, EM estimates `T`, and the §3.7 inferred threshold.

use ngs_cli::{emit_metrics, metrics_collector, read_sequences, run_main, usage_gate, Args};
use ngs_core::Result;
use redeem::{EmConfig, KmerErrorModel, Redeem};
use std::io::Write;

const USAGE: &str = "redeem-detect — repeat-aware erroneous k-mer detection via EM

USAGE:
  redeem-detect --input reads.fastq --output kmers.tsv [options]

OPTIONS:
  --input PATH        input reads (.fastq or .fasta)       [required]
  --output PATH       TSV output: kmer, Y, T, erroneous     [required]
  --k N               k-mer length                          [default: 13]
  --error-rate F      per-base error rate of the model      [default: 0.01]
  --dmax N            neighbourhood Hamming radius          [default: 1]
  --max-iters N       EM iteration cap                      [default: 60]
  --correct PATH      also write corrected reads here
  --metrics-json PATH write a BENCH_redeem.json metrics report here
  --help              print this message";

/// Spans every instrumented run must produce (the smoke-bench gate).
const REQUIRED_SPANS: &[&str] = &["redeem.em.iteration", "redeem.threshold.fit"];

fn main() {
    run_main(real_main());
}

fn real_main() -> Result<()> {
    let args = Args::parse(std::env::args().skip(1))?;
    usage_gate(&args, USAGE);
    let input = args.require("input")?;
    let output = args.require("output")?;
    let k: usize = args.get_parsed("k", 13)?;
    let rate: f64 = args.get_parsed("error-rate", 0.01)?;
    let dmax: usize = args.get_parsed("dmax", 1)?;
    let max_iters: usize = args.get_parsed("max-iters", 60)?;

    let reads = read_sequences(input)?;
    eprintln!("read {} sequences; building misread graph (k={k}, dmax={dmax})", reads.len());
    let model = KmerErrorModel::uniform(k, rate);
    let redeem = Redeem::new(&reads, k, &model, dmax);
    eprintln!(
        "spectrum: {} distinct k-mers, average degree {:.2}",
        redeem.spectrum().len(),
        redeem.average_degree()
    );
    let collector = metrics_collector(&args);
    let result = redeem.run_observed(&EmConfig { dmax, max_iters, tol: 1e-7 }, &collector);
    eprintln!("EM converged after {} iterations", result.iterations);

    let fit = redeem::fit_threshold_model_observed(&result.t, 3, &collector);
    let threshold = fit.as_ref().map(|f| f.threshold).unwrap_or(0.0);
    if let Some(f) = &fit {
        eprintln!(
            "mixture fit: G={} coverage constant={:.1} threshold={:.2} \
             genome length estimate={:.0}",
            f.g,
            f.coverage_constant,
            f.threshold,
            redeem::estimate_genome_length(&result.t, f.coverage_constant)
        );
    } else {
        eprintln!("mixture fit degenerate; reporting threshold 0 (nothing flagged)");
    }

    let mut out = std::io::BufWriter::new(std::fs::File::create(output)?);
    writeln!(out, "kmer\tY\tT\terroneous")?;
    for (i, (kmer, _)) in redeem.spectrum().iter().enumerate() {
        writeln!(
            out,
            "{}\t{}\t{:.3}\t{}",
            String::from_utf8_lossy(&ngs_kmer::packed::decode_kmer(kmer, k)),
            redeem.y()[i] as u64,
            result.t[i],
            u8::from(result.t[i] < threshold),
        )?;
    }
    out.flush()?;
    eprintln!("wrote {output}");

    if let Some(corrected_path) = args.get("correct") {
        let cov = fit.as_ref().map(|f| f.coverage_constant).unwrap_or(20.0);
        let corrected =
            redeem::correct_reads(&redeem, &model, &result.t, &reads, cov * 0.5, threshold);
        ngs_cli::write_sequences(corrected_path, &corrected)?;
        eprintln!("wrote corrected reads to {corrected_path}");
    }
    emit_metrics(&args, &collector, "redeem", REQUIRED_SPANS)?;
    Ok(())
}
