//! REDEEM EM over a read set (Chapter 3): emit per-k-mer observed counts
//! `Y`, EM estimates `T`, and the §3.7 inferred threshold.

use ngs_cli::{pipelines, run_main, usage_gate, Args};
use ngs_core::Result;

/// Registered at compile time; counts nothing until `--profile-mem` flips
/// it on (see `ngs_observe::alloc`).
#[global_allocator]
static ALLOC: ngs_observe::alloc::TrackingAllocator = ngs_observe::alloc::TrackingAllocator;

const USAGE: &str = "redeem-detect — repeat-aware erroneous k-mer detection via EM

USAGE:
  redeem-detect --input reads.fastq --output kmers.tsv [options]

OPTIONS:
  --input PATH          input reads (.fastq or .fasta)       [required]
  --output PATH         TSV output: kmer, Y, T, erroneous     [required]
  --k N                 k-mer length                          [default: 13]
  --error-rate F        per-base error rate of the model      [default: 0.01]
  --dmax N              neighbourhood Hamming radius          [default: 1]
  --max-iters N         EM iteration cap                      [default: 60]
  --correct PATH        also write corrected reads here
  --checkpoint-dir DIR  persist the misread graph + EM state here
  --checkpoint-every N  EM iterations between state snapshots  [default: 10]
  --resume              reload valid checkpoints instead of recomputing
  --max-bad-records N   skip up to N malformed input records   [default: 0 = fail fast]
  --crash-after STAGE   test hook: exit(42) after STAGE checkpoints (stages: model, em)
  --metrics-json PATH   write a BENCH_redeem.json metrics report here
  --trace-jsonl PATH    write an event trace here (view with ngs-trace)
  --profile-mem         track allocations (alloc fields in metrics/resources)
  --resource-jsonl PATH write a sampled resource timeline (RSS, CPU, alloc) here
  --threads N           parallel runtime threads (also: NGS_THREADS env) [default: all cores]
  --progress            print throughput/ETA heartbeat lines (auto on a TTY)
  --help                print this message";

fn main() {
    run_main(real_main());
}

fn real_main() -> Result<()> {
    let args = Args::parse(std::env::args().skip(1))?;
    usage_gate(&args, USAGE);
    pipelines::redeem_detect(&args)
}
