//! Long-lived Reptile correction server: load the index once, serve
//! correction requests over a unix/TCP socket until SIGTERM, then drain.

use ngs_cli::{run_main, serving, usage_gate, Args};
use ngs_core::Result;

/// Registered at compile time; counts nothing until `--profile-mem` flips
/// it on (see `ngs_observe::alloc`).
#[global_allocator]
static ALLOC: ngs_observe::alloc::TrackingAllocator = ngs_observe::alloc::TrackingAllocator;

const USAGE: &str = "ngs-serve — long-lived Reptile correction server

Loads (or warm-starts) the Phase-1 index once, prints
`ngs-serve: listening on ENDPOINT` to stdout when ready, then serves
correction requests until SIGTERM/SIGINT, draining in-flight work before
exiting 0. Admission is bounded: when the queue is full the server replies
`Overloaded` instead of buffering.

USAGE:
  ngs-serve --input reads.fastq --listen unix:/tmp/ngs.sock [options]

OPTIONS:
  --input PATH            reads the index is built from           [required]
  --listen ENDPOINT       unix:/path/to.sock or tcp:host:port     [required]
                          (tcp:127.0.0.1:0 picks a free port; see stdout)
  --genome-len N          genome length estimate (sets k)         [default: 1000000]
  --k N                   k-mer length override (1..=16)
  --d N                   max Hamming distance (1 or 2)           [default: 1]
  --workers N             correction worker threads               [default: all cores]
  --queue-capacity N      admission queue depth before Overloaded [default: 64]
  --default-deadline-ms N deadline for requests that carry 0      [default: 10000]
  --max-reads-per-request N                                       [default: 100000]
  --idle-timeout-ms N     disconnect peers silent mid-frame       [default: 30000]
  --poll-interval-ms N    accept/drain poll cadence               [default: 20]
  --max-requests N        test hook: drain after N served requests
  --checkpoint-dir DIR    share the reptile index checkpoint here
  --resume                warm-start from a valid index snapshot
  --max-bad-records N     skip up to N malformed input records    [default: 0 = fail fast]
  --metrics-json PATH     write a BENCH_serve.json metrics report on exit
  --trace-jsonl PATH      write an event trace here (view with ngs-trace)
  --profile-mem           track allocations (alloc fields in metrics/resources)
  --resource-jsonl PATH   write a sampled resource timeline (RSS, CPU, alloc) here
  --threads N             parallel runtime threads (also: NGS_THREADS env)
  --progress              print throughput/ETA heartbeat lines (auto on a TTY)
  --help                  print this message";

fn main() {
    run_main(real_main());
}

fn real_main() -> Result<()> {
    let args = Args::parse(std::env::args().skip(1))?;
    usage_gate(&args, USAGE);
    serving::serve_main(&args)
}
