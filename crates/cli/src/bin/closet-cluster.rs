//! Cluster metagenomic reads with CLOSET (Chapter 4).

use closet::ClosetParams;
use ngs_cli::{emit_metrics, metrics_collector, read_sequences, run_main, usage_gate, Args};
use ngs_core::{NgsError, Result};
use std::io::Write;

const USAGE: &str = "closet-cluster — sketch + quasi-clique read clustering

USAGE:
  closet-cluster --input reads.fasta --output clusters.tsv [options]

OPTIONS:
  --input PATH        input reads (.fasta or .fastq)            [required]
  --output PATH       TSV: threshold, cluster id, read ids      [required]
  --thresholds LIST   decreasing similarity series              [default: 0.8,0.7,0.6]
  --gamma F           quasi-clique density                      [default: 0.6667]
  --workers N         MapReduce worker threads                  [default: all cores]
  --align             validate edges by alignment (slower)
  --metrics-json PATH write a BENCH_closet.json metrics report here
  --help              print this message";

/// Spans every instrumented run must produce (the smoke-bench gate).
const REQUIRED_SPANS: &[&str] = &["closet.sketch", "closet.validate", "closet.cluster"];

fn main() {
    run_main(real_main());
}

fn real_main() -> Result<()> {
    let args = Args::parse(std::env::args().skip(1))?;
    usage_gate(&args, USAGE);
    let input = args.require("input")?;
    let output = args.require("output")?;
    let thresholds = args.get_f64_list("thresholds", &[0.8, 0.7, 0.6])?;
    let workers: usize =
        args.get_parsed("workers", std::thread::available_parallelism().map_or(4, |n| n.get()))?;

    let reads = read_sequences(input)?;
    let avg_len = reads.iter().map(|r| r.len()).sum::<usize>() / reads.len().max(1);
    eprintln!("read {} sequences (avg {avg_len} bp)", reads.len());

    let mut params = ClosetParams::standard(avg_len.max(32), thresholds, workers);
    params.gamma = args.get_parsed("gamma", params.gamma)?;
    if args.has_flag("align") {
        params.validator = closet::Validator::Alignment { min_overlap: 50 };
    }

    // Per-task MapReduce spans need the collector on the job config, so it
    // lives in an Arc shared between the config and this scope.
    let collector = std::sync::Arc::new(metrics_collector(&args));
    if collector.is_enabled() {
        params.job.collector = Some(collector.clone());
    }

    let t0 = std::time::Instant::now();
    let result = closet::run_observed(&reads, &params, &collector)
        .map_err(|e| NgsError::Io(format!("mapreduce job failed: {e}")))?;
    eprintln!(
        "pipeline in {:.2?}: {} candidate edges, {} confirmed",
        t0.elapsed(),
        result.sketch_stats.unique_edges,
        result.confirmed_edges
    );
    if result.job_stats.task_failures > 0 {
        eprintln!(
            "  fault tolerance: {} task failures, {} retried tasks, {} corrupt frames",
            result.job_stats.task_failures,
            result.job_stats.retried_tasks,
            result.job_stats.corrupt_frames
        );
    }
    for stats in &result.threshold_stats {
        eprintln!(
            "  t={:.2}: {} edges, {} clusters ({} processed)",
            stats.threshold, stats.edges, stats.resulting_clusters, stats.clusters_processed
        );
    }

    let mut out = std::io::BufWriter::new(std::fs::File::create(output)?);
    writeln!(out, "threshold\tcluster\treads")?;
    for (t, clusters) in &result.clusters_by_threshold {
        for (ci, cluster) in clusters.iter().enumerate() {
            let members: Vec<String> =
                cluster.vertices.iter().map(|&v| reads[v as usize].id.clone()).collect();
            writeln!(out, "{t:.3}\t{ci}\t{}", members.join(","))?;
        }
    }
    out.flush()?;
    eprintln!("wrote {output}");
    emit_metrics(&args, &collector, "closet", REQUIRED_SPANS)?;
    Ok(())
}
