//! Cluster metagenomic reads with CLOSET (Chapter 4).

use ngs_cli::{pipelines, run_main, usage_gate, Args};
use ngs_core::Result;

/// Registered at compile time; counts nothing until `--profile-mem` flips
/// it on (see `ngs_observe::alloc`).
#[global_allocator]
static ALLOC: ngs_observe::alloc::TrackingAllocator = ngs_observe::alloc::TrackingAllocator;

const USAGE: &str = "closet-cluster — sketch + quasi-clique read clustering

USAGE:
  closet-cluster --input reads.fasta --output clusters.tsv [options]

OPTIONS:
  --input PATH          input reads (.fasta or .fastq)            [required]
  --output PATH         TSV: threshold, cluster id, read ids      [required]
  --thresholds LIST     decreasing similarity series              [default: 0.8,0.7,0.6]
  --gamma F             quasi-clique density                      [default: 0.6667]
  --workers N           MapReduce worker threads                  [default: all cores]
  --mr-workers N        run sketch jobs on N crash-survivable worker
                        *processes* instead of threads             [default: 0 = in-process]
  --align               validate edges by alignment (slower)
  --checkpoint-dir DIR  persist the validated edge list here
  --resume              reload a valid checkpoint instead of re-sketching
  --max-bad-records N   skip up to N malformed input records      [default: 0 = fail fast]
  --crash-after STAGE   test hook: exit(42) after STAGE checkpoints (stage: edges)
  --metrics-json PATH   write a BENCH_closet.json metrics report here
  --trace-jsonl PATH    write an event trace here (view with ngs-trace)
  --profile-mem         track allocations (alloc fields in metrics/resources)
  --resource-jsonl PATH write a sampled resource timeline (RSS, CPU, alloc) here
  --threads N           parallel runtime threads (also: NGS_THREADS env) [default: all cores]
  --progress            print throughput/ETA heartbeat lines (auto on a TTY)
  --help                print this message";

fn main() {
    // Hidden worker mode: `closet-cluster --mr-worker <socket> <id>` is
    // what the pool re-execs; it must be handled before flag parsing.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().is_some_and(|a| a == "--mr-worker") {
        std::process::exit(ngs_cli::mr_worker_main(&argv[1..]));
    }
    run_main(real_main(argv));
}

fn real_main(argv: Vec<String>) -> Result<()> {
    let args = Args::parse(argv)?;
    usage_gate(&args, USAGE);
    pipelines::closet_cluster(&args)
}
