//! Drivers for the serving binaries: `ngs-serve` (long-lived correction
//! server), `ngs-client` (batch client with retry/backoff) and
//! `ngs-loadgen` (closed-loop latency bench).
//!
//! `ngs-serve` shares the Reptile checkpoint layout with `reptile-correct`
//! — pipeline `reptile`, stage `index`, the same parameter key — so a
//! prior batch run warm-starts the server (and a server run warms later
//! batch runs). A warm start is visible in the trace: a `serve.index.load`
//! span instead of the three `reptile.build.*` spans.

use crate::pipelines::{
    apply_threads_flag, load_reads, parse_thread_count, reptile_params_from_args,
    reptile_params_key, DurabilityOpts, ObserveOpts, ObserveSession,
};
use crate::{emit_metrics, emit_trace, metrics_collector, write_sequences, Args};
use ngs_core::{NgsError, Result};
use ngs_observe::Collector;
use ngs_server::{Client, ClientConfig, ClientError, Endpoint, Listener, Server, ServerConfig};
use reptile::Reptile;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn parse_endpoint(args: &Args, flag: &str) -> Result<Endpoint> {
    let raw = args.require(flag)?;
    Endpoint::parse(raw).map_err(|e| NgsError::InvalidParameter(format!("--{flag}: {e}")))
}

fn client_config(args: &Args) -> Result<ClientConfig> {
    let d = ClientConfig::default();
    Ok(ClientConfig {
        max_attempts: positive(args, "max-attempts", d.max_attempts)?,
        base_backoff: millis(args, "base-backoff-ms", d.base_backoff)?,
        max_backoff: millis(args, "max-backoff-ms", d.max_backoff)?,
        seed: args.get_parsed("seed", d.seed)?,
    })
}

fn millis(args: &Args, flag: &str, default: Duration) -> Result<Duration> {
    Ok(Duration::from_millis(args.get_parsed(flag, default.as_millis() as u64)?))
}

fn positive(args: &Args, flag: &str, default: usize) -> Result<usize> {
    let n: usize = args.get_parsed(flag, default)?;
    if n == 0 {
        return Err(NgsError::InvalidParameter(format!("--{flag}: must be at least 1, got 0")));
    }
    Ok(n)
}

fn client_failure(e: ClientError) -> NgsError {
    NgsError::Io(e.to_string())
}

// ------------------------------------------------------------- ngs-serve

/// Build (or warm-start) the Reptile index for `ngs-serve`, sharing the
/// `reptile-correct` checkpoint slot. Returns the index and whether it
/// came from a snapshot.
fn load_or_build_index(
    args: &Args,
    input: &str,
    opts: &DurabilityOpts,
    collector: &Arc<Collector>,
) -> Result<(Arc<Reptile>, bool)> {
    let genome_len: usize = args.get_parsed("genome-len", 1_000_000)?;
    let reads = load_reads(input, opts, collector)?;
    let params = reptile_params_from_args(args, &reads, genome_len)?;
    eprintln!(
        "parameters: k={} d={} |t|={} Cg={} Cm={} Qc={}",
        params.k,
        params.d,
        params.tile_len(),
        params.cg,
        params.cm,
        params.qc
    );

    // Same preprocessing as the batch pipeline: the index must be built
    // over the identical read set for served corrections to be
    // byte-identical to `reptile-correct` output.
    let pre = {
        let _s = collector.span("serve.preprocess");
        reptile::ambig::preprocess_ambiguous(&reads, &params)
    };

    let mut store = opts.store("reptile", input, collector)?;
    let params_key = reptile_params_key(&params);
    let cached = match (&store, opts.resume) {
        (Some(s), true) => {
            let _s = collector.span("serve.index.load");
            s.load("index", params_key).and_then(|b| Reptile::from_snapshot_bytes(&b).ok())
        }
        _ => None,
    };
    let warmed = cached.is_some();
    let rpt = match cached {
        Some(r) => {
            eprintln!(
                "warm start: resumed Phase-1 index from {}",
                store.as_ref().unwrap().dir().display()
            );
            r
        }
        None => {
            let r = Reptile::build_observed(&pre, params, collector);
            if let Some(s) = store.as_mut() {
                s.save("index", params_key, &r.snapshot_bytes())?;
                eprintln!("saved Phase-1 index snapshot to {}", s.dir().display());
            }
            r
        }
    };
    Ok((Arc::new(rpt), warmed))
}

fn server_config(args: &Args) -> Result<ServerConfig> {
    let d = ServerConfig::default();
    let workers = match args.value_of("workers")? {
        Some(raw) => parse_thread_count(raw, "--workers")?,
        None => d.workers,
    };
    Ok(ServerConfig {
        workers,
        queue_capacity: positive(args, "queue-capacity", d.queue_capacity)?,
        default_deadline: millis(args, "default-deadline-ms", d.default_deadline)?,
        max_reads_per_request: positive(args, "max-reads-per-request", d.max_reads_per_request)?,
        idle_timeout: millis(args, "idle-timeout-ms", d.idle_timeout)?,
        poll_interval: millis(args, "poll-interval-ms", d.poll_interval)?,
        max_requests: args
            .value_of("max-requests")?
            .map(|s| {
                s.parse::<u64>().map_err(|_| {
                    NgsError::InvalidParameter(format!("--max-requests: cannot parse {s:?}"))
                })
            })
            .transpose()?,
    })
}

/// `ngs-serve` driver: load/build the index once, bind the socket, print
/// the ready line, serve until SIGTERM/SIGINT (or `--max-requests`), then
/// drain gracefully and exit 0.
pub fn serve_main(args: &Args) -> Result<()> {
    let input = args.require("input")?;
    let endpoint = parse_endpoint(args, "listen")?;
    let opts = DurabilityOpts::from_args(args)?;
    let obs = ObserveOpts::from_args(args)?;
    let config = server_config(args)?;
    apply_threads_flag(args)?;

    // A long-lived server always records: `ngs-client --stats` must see
    // real queue-wait/latency percentiles even when the operator passed no
    // observability flags at startup.
    let collector = metrics_collector(args)?;
    let collector =
        Arc::new(if collector.is_enabled() { collector } else { ngs_observe::Collector::new() });
    let session = ObserveSession::begin(&obs, &collector, input, "serve");
    let (reptile, warmed) = load_or_build_index(args, input, &opts, &collector)?;

    // Bind before installing the signal handler so a failed bind is an
    // ordinary startup error, then advertise readiness on stdout — the
    // chaos harness (and any supervisor) waits for this exact line.
    let listener =
        Listener::bind(&endpoint).map_err(|e| NgsError::Io(format!("bind {endpoint}: {e}")))?;
    let actual = listener.local_endpoint();
    println!("ngs-serve: listening on {actual}");
    std::io::stdout().flush().map_err(|e| NgsError::Io(e.to_string()))?;

    // Signal bridge: the async-signal-safe handler only flips a static
    // flag; this thread forwards it into the server's drain flag so the
    // server itself stays signal-agnostic (in-process tests flip the flag
    // directly).
    ngs_server::signal::install_drain_handler();
    let drain = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let bridge = {
        let drain = drain.clone();
        let done = done.clone();
        let poll = config.poll_interval;
        std::thread::Builder::new()
            .name("serve-signal".into())
            .spawn(move || {
                while !done.load(Ordering::Acquire) {
                    if ngs_server::signal::drain_requested() {
                        drain.store(true, Ordering::Release);
                        break;
                    }
                    std::thread::sleep(poll);
                }
            })
            .expect("spawn signal bridge")
    };

    let workers = config.workers;
    let summary = Server::new(reptile, config, collector.clone()).serve(listener, drain);
    done.store(true, Ordering::Release);
    let _ = bridge.join();
    eprintln!(
        "drained: {} corrected, {} overloaded, {} deadline-exceeded, {} draining-rejected, \
         {} request errors over {} connections ({} connection errors), {} workers",
        summary.corrected,
        summary.overloaded,
        summary.deadline_exceeded,
        summary.draining_rejected,
        summary.request_errors,
        summary.connections,
        summary.connection_errors,
        workers
    );

    let mut required = vec!["serve.run"];
    if warmed {
        required.push("serve.index.load");
    } else {
        required.extend(["reptile.build.spectrum", "reptile.build.tiles"]);
    }
    session.finish(&collector)?;
    emit_metrics(args, &collector, "serve", &required)?;
    emit_trace(args, &collector)?;
    Ok(())
}

// ------------------------------------------------------------ ngs-client

/// `ngs-client` driver: ping, or correct a whole file in batches through
/// a running `ngs-serve`, writing the reassembled output atomically.
pub fn client_main(args: &Args) -> Result<()> {
    let endpoint = parse_endpoint(args, "connect")?;
    let mut client = Client::new(endpoint, client_config(args)?);

    if args.has_flag("ping") {
        let (k, distinct) = client.ping().map_err(client_failure)?;
        println!("pong: k={k} distinct_kmers={distinct}");
        return Ok(());
    }

    if args.has_flag("stats") {
        let watch_secs: u64 = args.get_parsed("watch", 0)?;
        let samples: u64 = args.get_parsed("samples", 0)?;
        let mut taken = 0u64;
        loop {
            let s = client.stats().map_err(client_failure)?;
            println!(
                "up {:>6.1}s  queue {}/{}  in-flight {}  conn-errors {}  rss {} MiB\n\
                 \x20 latency    p50 {:>8} us  p90 {:>8} us  p99 {:>8} us\n\
                 \x20 queue-wait p50 {:>8} us  p90 {:>8} us  p99 {:>8} us",
                s.uptime_ms as f64 / 1000.0,
                s.queue_depth,
                s.queue_capacity,
                s.in_flight,
                s.conn_errors,
                s.rss_bytes >> 20,
                s.latency_p50_us,
                s.latency_p90_us,
                s.latency_p99_us,
                s.queue_wait_p50_us,
                s.queue_wait_p90_us,
                s.queue_wait_p99_us,
            );
            if !s.cpu_top.is_empty() {
                let total: u64 = s.cpu_top.iter().map(|(_, n)| n).sum();
                println!("  cpu-top (self samples since start)");
                for (name, samples) in &s.cpu_top {
                    let pct = if total > 0 { *samples as f64 * 100.0 / total as f64 } else { 0.0 };
                    println!("    {samples:>8}  {pct:>5.1}%  {name}");
                }
            }
            std::io::stdout().flush().map_err(|e| NgsError::Io(e.to_string()))?;
            taken += 1;
            if watch_secs == 0 || (samples != 0 && taken >= samples) {
                return Ok(());
            }
            std::thread::sleep(Duration::from_secs(watch_secs));
        }
    }

    let input = args.require("input")?;
    let output = args.require("output")?;
    let batch_size = positive(args, "batch-size", 512)?;
    let deadline_ms: u64 = args.get_parsed("deadline-ms", 0)?;
    let opts = DurabilityOpts::from_args(args)?;
    let collector = Arc::new(metrics_collector(args)?);
    let reads = load_reads(input, &opts, &collector)?;

    let t0 = std::time::Instant::now();
    let mut corrected = Vec::with_capacity(reads.len());
    let mut bases_changed = 0u64;
    let mut reads_changed = 0u64;
    let mut batches = 0u64;
    for chunk in reads.chunks(batch_size) {
        let batch = client.correct(chunk, deadline_ms).map_err(client_failure)?;
        if batch.reads.len() != chunk.len() {
            return Err(NgsError::Io(format!(
                "server returned {} reads for a {}-read batch",
                batch.reads.len(),
                chunk.len()
            )));
        }
        corrected.extend(batch.reads);
        bases_changed += batch.bases_changed;
        reads_changed += batch.reads_changed;
        batches += 1;
    }
    write_sequences(output, &corrected)?;
    eprintln!(
        "corrected {} reads in {:.2?}: {} bases changed in {} reads \
         ({} batches, {} retries)",
        corrected.len(),
        t0.elapsed(),
        bases_changed,
        reads_changed,
        batches,
        client.retries
    );
    eprintln!("wrote {output}");
    Ok(())
}

// ----------------------------------------------------------- ngs-loadgen

/// `ngs-loadgen` driver: run a closed-loop client swarm and bless the
/// latency quantiles into the `BENCH_serve.json` schema.
///
/// With `--connect` the swarm targets a running server; without it an
/// in-process server is built from `--input` on a scratch unix socket
/// (sharing this process's collector, so server-side spans land in the
/// same report).
pub fn loadgen_main(args: &Args) -> Result<()> {
    let input = args.require("input")?;
    let opts = DurabilityOpts::from_args(args)?;
    let obs = ObserveOpts::from_args(args)?;
    apply_threads_flag(args)?;

    let collector = Arc::new(metrics_collector(args)?);
    let session = ObserveSession::begin(&obs, &collector, input, "serve");
    let reads = load_reads(input, &opts, &collector)?;
    if reads.is_empty() {
        return Err(NgsError::InvalidParameter(format!("{input}: no reads to load with")));
    }

    let cfg = ngs_server::loadgen::LoadGenConfig {
        clients: positive(args, "clients", 2)?,
        requests_per_client: positive(args, "requests-per-client", 20)?,
        batch_size: positive(args, "batch-size", 32)?,
        deadline_ms: args.get_parsed("deadline-ms", 0)?,
        client: client_config(args)?,
    };

    // External server, or an in-process one on a scratch socket.
    let (endpoint, server) = match args.value_of("connect")? {
        Some(raw) => {
            let ep = Endpoint::parse(raw)
                .map_err(|e| NgsError::InvalidParameter(format!("--connect: {e}")))?;
            (ep, None)
        }
        None => {
            let (reptile, _) = load_or_build_index(args, input, &opts, &collector)?;
            let endpoint = ngs_server::conn::scratch_endpoint("loadgen");
            let listener = Listener::bind(&endpoint)
                .map_err(|e| NgsError::Io(format!("bind {endpoint}: {e}")))?;
            let endpoint = listener.local_endpoint();
            let handle =
                Server::new(reptile, server_config(args)?, collector.clone()).spawn(listener);
            (endpoint, Some(handle))
        }
    };

    let run_span = collector.span_with_threads("serve.loadgen", cfg.clients);
    let report = ngs_server::loadgen::run(&endpoint, &reads, &cfg);
    drop(run_span);
    if let Some(handle) = server {
        handle.shutdown();
    }

    if report.corrected == 0 {
        return Err(NgsError::Io(format!(
            "load run produced no successful requests ({} failed)",
            report.failed
        )));
    }
    eprintln!(
        "loadgen: {} ok, {} failed, {} retries, {:.1} req/s over {:.2?}",
        report.corrected,
        report.failed,
        report.retries,
        report.qps(),
        report.elapsed
    );

    // Bless the user-visible latency quantiles as count-1 spans — the
    // shape `ngs-trace diff` gates on (and `validate_bench_invariants`
    // accepts: count == 1 with total == min == max).
    // Client-observed latency (includes retries and reconnects) under its
    // own name: the in-process server already records server-side
    // `serve.latency_us` into this same collector.
    collector.merge_histogram("serve.latency_client_us", &report.latency_us);
    for (name, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
        let us = report.quantile_us(q).expect("corrected > 0 implies non-empty histogram");
        let ns = us.saturating_mul(1000).max(1);
        collector.record_span_ns(&format!("serve.latency.{name}"), ns, 1);
        eprintln!("  {name}: {us} us");
    }

    let mut required =
        vec!["serve.loadgen", "serve.latency.p50", "serve.latency.p90", "serve.latency.p99"];

    // Server-side queue-wait percentiles, blessed next to the client view
    // so the perf gate sees both sides of an admission regression. The
    // in-process server records into this same collector; with --connect
    // the histogram lives in the remote process, so it is skipped here
    // (probe it live with `ngs-client --stats` instead).
    let queue_wait = collector.report("serve").histograms.get("serve.queue_wait_us").cloned();
    match queue_wait {
        Some(h) => {
            for (name, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
                let us = h.quantile(q).unwrap_or(0);
                let ns = us.saturating_mul(1000).max(1);
                collector.record_span_ns(&format!("serve.queue_wait.{name}"), ns, 1);
                eprintln!("  queue-wait {name}: {us} us");
            }
            required.extend([
                "serve.queue_wait.p50",
                "serve.queue_wait.p90",
                "serve.queue_wait.p99",
            ]);
        }
        None => eprintln!("  queue-wait: n/a (remote server; probe with ngs-client --stats)"),
    }

    session.finish(&collector)?;
    emit_metrics(args, &collector, "serve", &required)?;
    emit_trace(args, &collector)?;
    Ok(())
}
