//! Durable pipeline drivers shared by the `reptile-correct`,
//! `redeem-detect` and `closet-cluster` binaries.
//!
//! Each driver splits its pipeline at the stage boundaries the
//! corresponding crate can snapshot (see `ngs_durable::CheckpointStore`),
//! so `--checkpoint-dir DIR` persists expensive intermediate state and
//! `--resume` restarts from it after a crash — re-validating the manifest
//! checksums and the input-file fingerprint, and recomputing any stage
//! whose parameters changed. Resumed runs produce byte-identical output to
//! cold runs (all numeric state round-trips via `f64::to_bits`; see the
//! `crash_resume` integration test).
//!
//! The `--crash-after STAGE` flag is the test hook for that guarantee: it
//! kills the process (exit code [`CRASH_EXIT_CODE`]) immediately after the
//! named stage's checkpoint lands, simulating a crash at the worst moment
//! that is still recoverable.

use crate::{
    emit_metrics, emit_trace, metrics_collector, read_sequences_observed, write_sequences, Args,
};
use ngs_core::{NgsError, Read, Result};
use ngs_durable::{ByteWriter, CheckpointStore, Fingerprint};
use ngs_observe::sampler::{ProgressMeter, ResourceSampler};
use ngs_observe::Collector;
use ngs_seqio::MalformedPolicy;
use std::io::{IsTerminal as _, Write as _};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Exit code of a run killed by `--crash-after` (distinct from the generic
/// error exit 1, so tests can tell an injected crash from a real failure).
pub const CRASH_EXIT_CODE: i32 = 42;

/// The durability-related flags shared by all three pipeline CLIs.
#[derive(Debug, Clone, Default)]
pub struct DurabilityOpts {
    /// `--checkpoint-dir DIR`: persist stage snapshots here.
    pub checkpoint_dir: Option<PathBuf>,
    /// `--resume`: reload valid snapshots instead of recomputing.
    pub resume: bool,
    /// `--max-bad-records N`: input error budget (0 = fail fast).
    pub policy: MalformedPolicy,
    /// `--crash-after STAGE`: test hook, exit(42) after that stage's
    /// checkpoint is saved.
    pub crash_after: Option<String>,
}

impl DurabilityOpts {
    /// Parse the shared durability flags.
    pub fn from_args(args: &Args) -> Result<DurabilityOpts> {
        let checkpoint_dir = args.value_of("checkpoint-dir")?.map(PathBuf::from);
        let resume = args.has_flag("resume");
        if resume && checkpoint_dir.is_none() {
            return Err(NgsError::InvalidParameter("--resume requires --checkpoint-dir".into()));
        }
        let max_bad: usize = args.get_parsed("max-bad-records", 0)?;
        let policy = if max_bad == 0 {
            MalformedPolicy::FailFast
        } else {
            MalformedPolicy::Skip { max: max_bad }
        };
        let crash_after = args.value_of("crash-after")?.map(String::from);
        Ok(DurabilityOpts { checkpoint_dir, resume, policy, crash_after })
    }

    /// Open the checkpoint store when `--checkpoint-dir` was given,
    /// fingerprinting `input` so snapshots taken against other data miss.
    pub fn store<'c>(
        &self,
        pipeline: &str,
        input: &str,
        collector: &'c Collector,
    ) -> Result<Option<CheckpointStore<'c>>> {
        match &self.checkpoint_dir {
            None => Ok(None),
            Some(dir) => {
                let fp = Fingerprint::of_file(input)?;
                Ok(Some(CheckpointStore::open(dir, pipeline, fp, collector)?))
            }
        }
    }

    /// Test hook: die right after `stage`'s checkpoint landed.
    pub fn crash_if_requested(&self, stage: &str) {
        if self.crash_after.as_deref() == Some(stage) {
            eprintln!("crash-after: simulated crash after stage {stage:?}");
            std::process::exit(CRASH_EXIT_CODE);
        }
    }
}

/// Load the input reads under the run's [`MalformedPolicy`], folding the
/// skip count into the collector (`seqio.records_skipped`) and ticking the
/// `seqio.bytes_read` / `seqio.records_read` counters while reading.
pub fn load_reads(input: &str, opts: &DurabilityOpts, collector: &Collector) -> Result<Vec<Read>> {
    let (reads, skipped) = read_sequences_observed(input, opts.policy, collector)?;
    collector.add("seqio.records_skipped", skipped as u64);
    if skipped > 0 {
        eprintln!("skipped {skipped} malformed record(s) in {input}");
    }
    eprintln!("read {} sequences from {input}", reads.len());
    Ok(reads)
}

/// Parse a thread count from `--threads` or `NGS_THREADS`. Zero,
/// negatives, overflow, and garbage are all [`NgsError::InvalidParameter`]
/// (exit code 2 through `run_main`) with a message naming the origin —
/// never a silent fallback to "all cores".
pub fn parse_thread_count(raw: &str, origin: &str) -> Result<usize> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(NgsError::InvalidParameter(format!(
            "{origin}: thread count must be at least 1, got 0"
        ))),
        Ok(n) => Ok(n),
        Err(_) => Err(NgsError::InvalidParameter(format!(
            "{origin}: cannot parse thread count {raw:?} (expected a positive integer \
             no larger than {})",
            usize::MAX
        ))),
    }
}

/// Apply the shared `--threads N` flag: pin the size of the global
/// parallel runtime before its first use (taking precedence over the
/// `NGS_THREADS` environment variable). Without the flag, a *set*
/// `NGS_THREADS` is validated here too — the pool itself silently ignores
/// malformed values, which would turn a typo'd `NGS_THREADS=O8` into an
/// accidental all-cores run. Unset env and absent flag fall through to the
/// pool's own sizing (env, then available cores).
pub fn apply_threads_flag(args: &Args) -> Result<()> {
    if let Some(raw) = args.value_of("threads")? {
        rayon::set_num_threads(parse_thread_count(raw, "--threads")?);
    } else if let Ok(raw) = std::env::var("NGS_THREADS") {
        rayon::set_num_threads(parse_thread_count(&raw, "NGS_THREADS")?);
    }
    Ok(())
}

/// The observability flags shared by all three pipeline CLIs.
#[derive(Debug, Clone, Default)]
pub struct ObserveOpts {
    /// `--profile-mem`: enable the tracking allocator's counters (the
    /// binary must have registered [`ngs_observe::alloc::TrackingAllocator`]
    /// as its global allocator — all three pipeline binaries do).
    pub profile_mem: bool,
    /// `--resource-jsonl PATH`: sample allocator + `/proc` stats on a
    /// background thread and write the timeline JSONL here at the end.
    pub resource_jsonl: Option<PathBuf>,
    /// `--progress`: force the live progress heartbeat even when stderr is
    /// not a TTY (a TTY stderr turns it on automatically for instrumented
    /// runs).
    pub progress: bool,
    /// `--profile-cpu[=HZ]`: sample every thread's span stack at this rate
    /// and write `PROFILE_<pipeline>.folded` (see
    /// [`ngs_observe::profile`]).
    pub profile_cpu: Option<u32>,
    /// Where the folded profile lands: next to `--trace-jsonl`, else next
    /// to `--metrics-json`, else the working directory.
    pub profile_dir: PathBuf,
}

impl ObserveOpts {
    /// Parse the shared observability flags.
    pub fn from_args(args: &Args) -> Result<ObserveOpts> {
        let anchor = match args.value_of("trace-jsonl")? {
            Some(p) => Some(p),
            None => args.value_of("metrics-json")?,
        };
        let profile_dir = anchor
            .map(|p| std::path::Path::new(p).parent().unwrap_or(std::path::Path::new("")))
            .filter(|p| !p.as_os_str().is_empty())
            .map_or_else(|| PathBuf::from("."), PathBuf::from);
        Ok(ObserveOpts {
            profile_mem: args.has_flag("profile-mem"),
            resource_jsonl: args.value_of("resource-jsonl")?.map(PathBuf::from),
            progress: args.has_flag("progress"),
            profile_cpu: crate::profile_cpu_hz(args)?,
            profile_dir,
        })
    }
}

/// Live telemetry for one pipeline run: the tracking allocator, the
/// background resource sampler, the progress heartbeat, and the span-stack
/// CPU profiler. Construct with [`ObserveSession::begin`] before the input
/// is read (so ingest throughput is visible live) and call
/// [`ObserveSession::finish`] after the run's spans close — but *before*
/// `emit_metrics`, so the profiler's per-span CPU figures land in the
/// BENCH report — to stop the threads and write the resource timeline and
/// folded profile.
pub struct ObserveSession {
    sampler: Option<ResourceSampler>,
    progress: Option<ProgressMeter>,
    resource_path: Option<PathBuf>,
    profiler: Option<ngs_observe::profile::Profiler>,
    profile_path: Option<PathBuf>,
}

impl ObserveSession {
    /// How often the background sampler snapshots allocator + `/proc`
    /// stats. 100 ms keeps timelines readable for runs of seconds to
    /// minutes while costing well under 0.1% CPU.
    pub const SAMPLE_INTERVAL: Duration = Duration::from_millis(100);
    /// Progress heartbeat cadence — 1 line per second keeps long runs
    /// legible without flooding stderr.
    pub const PROGRESS_INTERVAL: Duration = Duration::from_secs(1);

    /// Start the requested telemetry. `input` is the pipeline's input path;
    /// its file size becomes the ETA denominator for the ingest phase.
    /// `pipeline` names the folded CPU profile (`PROFILE_<pipeline>.folded`).
    pub fn begin(
        opts: &ObserveOpts,
        collector: &Arc<Collector>,
        input: &str,
        pipeline: &str,
    ) -> ObserveSession {
        if opts.profile_mem && !ngs_observe::alloc::enable() {
            eprintln!(
                "warning: --profile-mem given but this binary did not register the \
                 tracking allocator; allocation figures will be absent"
            );
        }
        let sampler =
            opts.resource_jsonl.as_ref().map(|_| ResourceSampler::start(Self::SAMPLE_INTERVAL));
        // Auto-enable the heartbeat on interactive runs of instrumented
        // pipelines; `--progress` forces it for piped/captured stderr.
        let want_progress =
            (opts.progress || std::io::stderr().is_terminal()) && collector.is_enabled();
        let progress = want_progress.then(|| {
            ProgressMeter::start(
                collector.clone(),
                "seqio.records_read",
                "seqio.bytes_read",
                std::fs::metadata(input).ok().map(|m| m.len()),
                Self::PROGRESS_INTERVAL,
            )
        });
        let profiler = opts.profile_cpu.and_then(|hz| {
            let p = ngs_observe::profile::start(hz);
            if p.is_none() {
                eprintln!("warning: --profile-cpu given but a CPU profiler is already active");
            }
            p
        });
        let profile_path =
            profiler.as_ref().map(|_| opts.profile_dir.join(format!("PROFILE_{pipeline}.folded")));
        ObserveSession {
            sampler,
            progress,
            resource_path: opts.resource_jsonl.clone(),
            profiler,
            profile_path,
        }
    }

    /// Stop the telemetry threads, fold the CPU profile into `collector`
    /// (so a subsequent `emit_metrics` reports the per-span CPU figures)
    /// and write the folded profile + resource timeline atomically.
    pub fn finish(self, collector: &Collector) -> Result<()> {
        if let Some(p) = self.progress {
            p.stop();
        }
        if let Some(profiler) = self.profiler {
            let data = profiler.stop();
            collector.apply_cpu_profile(&data);
            if let Some(path) = &self.profile_path {
                ngs_durable::write_atomic(path, data.to_folded_string().as_bytes())?;
                eprintln!(
                    "wrote CPU profile to {} ({} on-cpu / {} off-cpu samples at {} Hz)",
                    path.display(),
                    data.oncpu_samples,
                    data.offcpu_samples,
                    data.hz
                );
            }
        }
        if let (Some(sampler), Some(path)) = (self.sampler, self.resource_path) {
            let samples = sampler.stop();
            ngs_durable::write_atomic(&path, ngs_observe::sampler::to_jsonl(&samples).as_bytes())?;
            eprintln!("wrote resource timeline to {}", path.display());
        }
        Ok(())
    }
}

fn key_of(build: impl FnOnce(&mut ByteWriter)) -> u64 {
    let mut w = ByteWriter::with_capacity(64);
    build(&mut w);
    ngs_durable::checksum_bytes(&w.into_bytes())
}

// ---------------------------------------------------------------- reptile

pub(crate) fn reptile_params_key(p: &reptile::ReptileParams) -> u64 {
    key_of(|w| {
        w.put_usize(p.k);
        w.put_usize(p.d);
        w.put_usize(p.tile_overlap);
        w.put_u32(p.cg);
        w.put_u32(p.cm);
        w.put_f64(p.cr);
        w.put_u8(p.qc);
        w.put_u8(p.qm);
        w.put_u8(p.default_n_base);
        w.put_usize(p.max_n_per_window);
        w.put_usize(p.max_shift_retries);
    })
}

/// Reptile parameters from the data, with the shared `--k`/`--d`
/// overrides applied. One function so `reptile-correct` and `ngs-serve`
/// derive *identical* parameters (and thus an identical checkpoint key)
/// from identical flags — that is what lets a batch run warm-start the
/// server and vice versa.
pub(crate) fn reptile_params_from_args(
    args: &Args,
    reads: &[Read],
    genome_len: usize,
) -> Result<reptile::ReptileParams> {
    let mut params = reptile::ReptileParams::from_data(reads, genome_len);
    if let Some(k) = args.value_of("k")? {
        params.k =
            k.parse().map_err(|_| NgsError::InvalidParameter(format!("--k: bad value {k:?}")))?;
    }
    params.d = args.get_parsed("d", params.d)?;
    Ok(params)
}

/// `reptile-correct` driver: build (or resume) the Phase-1 index, then
/// correct. Checkpointed stage: `index` (spectrum + tile table + neighbour
/// index, the dominant build cost).
pub fn reptile_correct(args: &Args) -> Result<()> {
    let input = args.require("input")?;
    let output = args.require("output")?;
    let genome_len: usize = args.get_parsed("genome-len", 1_000_000)?;
    let opts = DurabilityOpts::from_args(args)?;
    let obs = ObserveOpts::from_args(args)?;
    apply_threads_flag(args)?;

    let collector = Arc::new(metrics_collector(args)?);
    let session = ObserveSession::begin(&obs, &collector, input, "reptile");
    // Root span for the whole run: every phase span nests under it in the
    // trace (ambient parenting on this thread). Dropped before the
    // metrics/trace emit so it is recorded in both.
    let run_span = collector.span("reptile.run");
    let reads = load_reads(input, &opts, &collector)?;

    let params = reptile_params_from_args(args, &reads, genome_len)?;
    eprintln!(
        "parameters: k={} d={} |t|={} Cg={} Cm={} Qc={}",
        params.k,
        params.d,
        params.tile_len(),
        params.cg,
        params.cm,
        params.qc
    );

    // Mirror Reptile::run_observed: ambiguity preprocessing happens before
    // the index is built, so a resumed index sees the same read set.
    let pre = {
        let _s = collector.span("reptile.preprocess");
        reptile::ambig::preprocess_ambiguous(&reads, &params)
    };

    let mut store = opts.store("reptile", input, &collector)?;
    let params_key = reptile_params_key(&params);
    let cached = match (&store, opts.resume) {
        (Some(s), true) => {
            s.load("index", params_key).and_then(|b| reptile::Reptile::from_snapshot_bytes(&b).ok())
        }
        _ => None,
    };
    let resumed_index = cached.is_some();

    let t0 = std::time::Instant::now();
    let rpt = match cached {
        Some(r) => {
            eprintln!("resumed Phase-1 index from {}", store.as_ref().unwrap().dir().display());
            r
        }
        None => {
            let r = reptile::Reptile::build_observed(&pre, params, &collector);
            if let Some(s) = store.as_mut() {
                s.save("index", params_key, &r.snapshot_bytes())?;
            }
            opts.crash_if_requested("index");
            r
        }
    };
    let (corrected, stats) = rpt.correct_observed(&pre, &collector);
    eprintln!(
        "corrected in {:.2?}: {} bases changed in {} reads \
         ({} tiles validated, {} corrected, {} unresolved)",
        t0.elapsed(),
        stats.bases_changed,
        stats.reads_changed,
        stats.tiles_validated,
        stats.tiles_corrected,
        stats.tiles_unresolved
    );
    write_sequences(output, &corrected)?;
    eprintln!("wrote {output}");

    // A resumed run never executes the build spans; gate only on what this
    // process actually did.
    let mut required = vec!["reptile.run", "reptile.correct"];
    if !resumed_index {
        required.extend([
            "reptile.build.spectrum",
            "reptile.build.tiles",
            "reptile.build.neighbor_index",
        ]);
    }
    drop(run_span);
    // The profiler stops in finish(), which folds CPU figures into the
    // collector — so finish comes before the metrics emit.
    session.finish(&collector)?;
    emit_metrics(args, &collector, "reptile", &required)?;
    emit_trace(args, &collector)?;
    Ok(())
}

// ----------------------------------------------------------------- redeem

/// `redeem-detect` driver. Checkpointed stages: `model` (misread graph,
/// the expensive construction) and `em` (EM state, every
/// `--checkpoint-every` iterations).
pub fn redeem_detect(args: &Args) -> Result<()> {
    let input = args.require("input")?;
    let output = args.require("output")?;
    let k: usize = args.get_parsed("k", 13)?;
    let rate: f64 = args.get_parsed("error-rate", 0.01)?;
    let dmax: usize = args.get_parsed("dmax", 1)?;
    let max_iters: usize = args.get_parsed("max-iters", 60)?;
    let checkpoint_every: usize = args.get_parsed("checkpoint-every", 10)?;
    let opts = DurabilityOpts::from_args(args)?;
    let obs = ObserveOpts::from_args(args)?;
    apply_threads_flag(args)?;

    let collector = Arc::new(metrics_collector(args)?);
    let session = ObserveSession::begin(&obs, &collector, input, "redeem");
    let run_span = collector.span("redeem.run");
    let reads = load_reads(input, &opts, &collector)?;

    let mut store = opts.store("redeem", input, &collector)?;
    let model_key = key_of(|w| {
        w.put_usize(k);
        w.put_f64(rate);
        w.put_usize(dmax);
    });

    let model = redeem::KmerErrorModel::uniform(k, rate);
    let cached = match (&store, opts.resume) {
        (Some(s), true) => {
            s.load("model", model_key).and_then(|b| redeem::Redeem::from_snapshot_bytes(&b).ok())
        }
        _ => None,
    };
    let rd = match cached {
        Some(r) => {
            eprintln!("resumed misread graph from checkpoint");
            r
        }
        None => {
            eprintln!("building misread graph (k={k}, dmax={dmax})");
            let r = redeem::Redeem::new(&reads, k, &model, dmax);
            if let Some(s) = store.as_mut() {
                s.save("model", model_key, &r.snapshot_bytes())?;
            }
            opts.crash_if_requested("model");
            r
        }
    };
    eprintln!(
        "spectrum: {} distinct k-mers, average degree {:.2}",
        rd.spectrum().len(),
        rd.average_degree()
    );

    let cfg = redeem::EmConfig { dmax, max_iters, tol: 1e-7 };
    let em_key = key_of(|w| {
        w.put_u64(model_key);
        w.put_usize(cfg.max_iters);
        w.put_f64(cfg.tol);
    });
    let resume_state = match (&store, opts.resume) {
        (Some(s), true) => s.load("em", em_key).and_then(|b| redeem::EmState::from_bytes(&b).ok()),
        _ => None,
    };
    let start_iters = resume_state.as_ref().map_or(0, |s| s.iterations);
    if let Some(s) = &resume_state {
        eprintln!("resumed EM state at iteration {}", s.iterations);
    }

    let every = if store.is_some() { checkpoint_every } else { 0 };
    let mut hook_err: Option<NgsError> = None;
    let result = rd.run_resumable(
        &cfg,
        resume_state,
        every,
        &mut |state| {
            if let Some(s) = store.as_mut() {
                if let Err(e) = s.save("em", em_key, &state.to_bytes()) {
                    hook_err = Some(e);
                    return false;
                }
                opts.crash_if_requested("em");
            }
            true
        },
        &collector,
    );
    if let Some(e) = hook_err {
        return Err(e);
    }
    eprintln!("EM finished after {} iterations", result.iterations);

    let fit = redeem::fit_threshold_model_observed(&result.t, 3, &collector);
    let threshold = fit.as_ref().map(|f| f.threshold).unwrap_or(0.0);
    if let Some(f) = &fit {
        eprintln!(
            "mixture fit: G={} coverage constant={:.1} threshold={:.2} \
             genome length estimate={:.0}",
            f.g,
            f.coverage_constant,
            f.threshold,
            redeem::estimate_genome_length(&result.t, f.coverage_constant)
        );
    } else {
        eprintln!("mixture fit degenerate; reporting threshold 0 (nothing flagged)");
    }

    let mut file = ngs_durable::AtomicFile::create(output)?;
    {
        let mut out = std::io::BufWriter::new(&mut file);
        writeln!(out, "kmer\tY\tT\terroneous")?;
        for (i, (kmer, _)) in rd.spectrum().iter().enumerate() {
            writeln!(
                out,
                "{}\t{}\t{:.3}\t{}",
                String::from_utf8_lossy(&ngs_kmer::packed::decode_kmer(kmer, k)),
                rd.y()[i] as u64,
                result.t[i],
                u8::from(result.t[i] < threshold),
            )?;
        }
        out.flush()?;
    }
    file.commit()?;
    eprintln!("wrote {output}");

    if let Some(corrected_path) = args.value_of("correct")? {
        let cov = fit.as_ref().map(|f| f.coverage_constant).unwrap_or(20.0);
        let corrected = redeem::correct_reads(&rd, &model, &result.t, &reads, cov * 0.5, threshold);
        write_sequences(corrected_path, &corrected)?;
        eprintln!("wrote corrected reads to {corrected_path}");
    }

    // A run resumed at (or past) convergence executes zero EM iterations,
    // so the iteration span only gates when iterations actually ran here.
    let mut required = vec!["redeem.run", "redeem.threshold.fit"];
    if result.iterations > start_iters {
        required.push("redeem.em.iteration");
    }
    drop(run_span);
    session.finish(&collector)?;
    emit_metrics(args, &collector, "redeem", &required)?;
    emit_trace(args, &collector)?;
    Ok(())
}

// ----------------------------------------------------------------- closet

fn closet_edges_key(params: &closet::ClosetParams) -> u64 {
    // Only Phase-I-affecting parameters: the threshold series and γ shape
    // Phase II, which always re-runs from the edge list.
    key_of(|w| {
        w.put_usize(params.sketch.k);
        w.put_u64(params.sketch.modulus);
        w.put_usize(params.sketch.rounds);
        w.put_usize(params.sketch.cmax);
        w.put_f64(params.sketch.cmin);
        match params.validator {
            closet::Validator::Alignment { min_overlap } => {
                w.put_u8(0);
                w.put_usize(min_overlap);
            }
            closet::Validator::KmerContainment { k } => {
                w.put_u8(1);
                w.put_usize(k);
            }
        }
    })
}

/// `closet-cluster` driver. Checkpointed stage: `edges` (the validated edge
/// list closing Phase I — sketching + validation dominate runtime, while
/// Phase II is cheap and depends on the threshold series).
pub fn closet_cluster(args: &Args) -> Result<()> {
    let input = args.require("input")?;
    let output = args.require("output")?;
    let thresholds = args.get_f64_list("thresholds", &[0.8, 0.7, 0.6])?;
    let workers: usize =
        args.get_parsed("workers", std::thread::available_parallelism().map_or(4, |n| n.get()))?;
    let opts = DurabilityOpts::from_args(args)?;
    let obs = ObserveOpts::from_args(args)?;
    apply_threads_flag(args)?;

    // Per-task MapReduce spans need the collector on the job config, so it
    // lives in an Arc shared between the config and this scope.
    let collector = Arc::new(metrics_collector(args)?);
    let session = ObserveSession::begin(&obs, &collector, input, "closet");
    let run_span = collector.span("closet.run");
    let reads = load_reads(input, &opts, &collector)?;
    let avg_len = reads.iter().map(|r| r.len()).sum::<usize>() / reads.len().max(1);
    eprintln!("average read length {avg_len} bp");

    let mut params = closet::ClosetParams::standard(avg_len.max(32), thresholds, workers);
    params.gamma = args.get_parsed("gamma", params.gamma)?;
    if args.has_flag("align") {
        params.validator = closet::Validator::Alignment { min_overlap: 50 };
    }
    let mr_workers: usize = args.get_parsed("mr-workers", 0)?;
    if mr_workers > 0 {
        // Re-exec this binary in its hidden `--mr-worker` mode; the pool
        // appends the socket path and worker id per spawn.
        let exe = std::env::current_exe()
            .map_err(|e| NgsError::Io(format!("cannot locate own executable: {e}")))?;
        params.pool = Some(mapreduce_lite::PoolConfig::with_worker_cmd(
            mr_workers,
            vec![exe.to_string_lossy().into_owned(), "--mr-worker".into()],
        ));
        eprintln!("multi-process MapReduce: {mr_workers} worker processes");
    }
    if collector.is_enabled() {
        params.job.collector = Some(collector.clone());
    }

    let mut store = opts.store("closet", input, &collector)?;
    let edges_key = closet_edges_key(&params);
    let cached = match (&store, opts.resume) {
        (Some(s), true) => s
            .load("edges", edges_key)
            .and_then(|b| closet::EdgePhase::from_bytes(&b, reads.len()).ok()),
        _ => None,
    };

    let t0 = std::time::Instant::now();
    let edges = match cached {
        Some(e) => {
            eprintln!("resumed {} validated edges from checkpoint", e.validated.len());
            e.replay_observed(reads.len(), workers, &collector);
            e
        }
        None => {
            let e = closet::build_edges_observed(&reads, &params, &collector)
                .map_err(|e| NgsError::Io(format!("mapreduce job failed: {e}")))?;
            if let Some(s) = store.as_mut() {
                s.save("edges", edges_key, &e.to_bytes())?;
            }
            opts.crash_if_requested("edges");
            e
        }
    };
    let result = closet::cluster_edges_observed(&edges, &params, &collector)
        .map_err(|e| NgsError::Io(format!("mapreduce job failed: {e}")))?;
    eprintln!(
        "pipeline in {:.2?}: {} candidate edges, {} confirmed",
        t0.elapsed(),
        result.sketch_stats.unique_edges,
        result.confirmed_edges
    );
    if result.job_stats.task_failures > 0 {
        eprintln!(
            "  fault tolerance: {} task failures, {} retried tasks, {} corrupt frames",
            result.job_stats.task_failures,
            result.job_stats.retried_tasks,
            result.job_stats.corrupt_frames
        );
    }
    for stats in &result.threshold_stats {
        eprintln!(
            "  t={:.2}: {} edges, {} clusters ({} processed)",
            stats.threshold, stats.edges, stats.resulting_clusters, stats.clusters_processed
        );
    }

    let mut file = ngs_durable::AtomicFile::create(output)?;
    {
        let mut out = std::io::BufWriter::new(&mut file);
        writeln!(out, "threshold\tcluster\treads")?;
        for (t, clusters) in &result.clusters_by_threshold {
            for (ci, cluster) in clusters.iter().enumerate() {
                let members: Vec<String> =
                    cluster.vertices.iter().map(|&v| reads[v as usize].id.clone()).collect();
                writeln!(out, "{t:.3}\t{ci}\t{}", members.join(","))?;
            }
        }
        out.flush()?;
    }
    file.commit()?;
    eprintln!("wrote {output}");

    // Static gate: a resumed run replays the Phase-I spans from the
    // checkpoint (EdgePhase::replay_observed), so all three always exist.
    drop(run_span);
    session.finish(&collector)?;
    emit_metrics(
        args,
        &collector,
        "closet",
        &["closet.run", "closet.sketch", "closet.validate", "closet.cluster"],
    )?;
    emit_trace(args, &collector)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_parse_strictly() {
        assert_eq!(parse_thread_count("4", "--threads").unwrap(), 4);
        assert_eq!(parse_thread_count(" 8 ", "NGS_THREADS").unwrap(), 8);

        let zero = parse_thread_count("0", "--threads").unwrap_err();
        assert!(matches!(zero, NgsError::InvalidParameter(_)), "got: {zero:?}");
        assert!(zero.to_string().contains("--threads"), "got: {zero}");
        assert!(zero.to_string().contains("at least 1"), "got: {zero}");

        for bad in ["", "wat", "-2", "3.5", "0x8", "18446744073709551616000"] {
            let err = parse_thread_count(bad, "NGS_THREADS").unwrap_err();
            assert!(matches!(err, NgsError::InvalidParameter(_)), "{bad:?} -> {err:?}");
            assert!(err.to_string().contains("NGS_THREADS"), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn threads_flag_rejects_zero_and_garbage() {
        for bad in ["0", "lots"] {
            let args = Args::parse(["--threads".to_string(), bad.to_string()]).unwrap();
            let err = apply_threads_flag(&args).unwrap_err();
            assert!(matches!(err, NgsError::InvalidParameter(_)), "{bad:?} -> {err:?}");
        }
    }

    #[test]
    fn env_thread_count_is_validated_not_silently_ignored() {
        // Process-global env var: other unit tests in this binary never
        // touch NGS_THREADS, and the determinism suite that does runs as a
        // separate integration-test process.
        std::env::set_var("NGS_THREADS", "O8");
        let args = Args::parse(std::iter::empty::<String>()).unwrap();
        let err = apply_threads_flag(&args).unwrap_err();
        std::env::remove_var("NGS_THREADS");
        assert!(matches!(err, NgsError::InvalidParameter(_)), "got: {err:?}");
        assert!(err.to_string().contains("NGS_THREADS"), "got: {err}");
        // A --threads flag takes precedence over the (now absent) env var.
        let args = Args::parse(["--threads".to_string(), "2".to_string()]).unwrap();
        apply_threads_flag(&args).unwrap();
    }
}
