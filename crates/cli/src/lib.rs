//! `ngs-cli` — command-line front ends for the ngs-correct tool suite.
//!
//! Binaries (all take `--key value` flags; `--help` prints usage):
//!
//! * `reptile-correct` — correct a FASTQ/FASTA file with Reptile;
//! * `redeem-detect` — REDEEM EM over a read set: per-k-mer `Y` and `T`
//!   estimates plus the §3.7 inferred threshold, as TSV;
//! * `closet-cluster` — CLOSET clustering at a threshold series, clusters
//!   as TSV;
//! * `assemble` — de Bruijn unitig assembly to FASTA;
//! * `simulate-reads` — generate a synthetic dataset with ground truth.
//!
//! This module hosts the shared argument parser and I/O helpers so the
//! binaries stay thin and the logic is unit-testable.

use ngs_core::{NgsError, Read, Result};
use std::collections::BTreeMap;

/// A parsed `--key value` command line.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    /// Bare `--flag` switches (no value).
    flags: Vec<String>,
}

impl Args {
    /// Parse a raw argument list (excluding the program name).
    ///
    /// Every `--key` consumes the following token as its value unless that
    /// token is itself a `--key`, in which case the first key is recorded
    /// as a bare flag.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args> {
        let mut args = Args::default();
        let mut iter = argv.into_iter().peekable();
        while let Some(tok) = iter.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| NgsError::InvalidParameter(format!("expected --flag, got {tok:?}")))?
                .to_string();
            if key.is_empty() {
                return Err(NgsError::InvalidParameter("empty flag name".into()));
            }
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().unwrap();
                    args.values.insert(key, value);
                }
                _ => args.flags.push(key),
            }
        }
        Ok(args)
    }

    /// True when the bare flag was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A string value, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A required string value.
    pub fn require(&self, name: &str) -> Result<&str> {
        self.get(name)
            .ok_or_else(|| NgsError::InvalidParameter(format!("missing required --{name}")))
    }

    /// A parsed value with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T> {
        match self.get(name) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| NgsError::InvalidParameter(format!("--{name}: cannot parse {s:?}"))),
        }
    }

    /// A comma-separated list of floats.
    pub fn get_f64_list(&self, name: &str, default: &[f64]) -> Result<Vec<f64>> {
        match self.get(name) {
            None => Ok(default.to_vec()),
            Some(s) => s
                .split(',')
                .map(|tok| {
                    tok.trim().parse::<f64>().map_err(|_| {
                        NgsError::InvalidParameter(format!("--{name}: bad float {tok:?}"))
                    })
                })
                .collect(),
        }
    }
}

/// Read sequences from a path, dispatching on extension (`.fa`/`.fasta` →
/// FASTA, anything else → FASTQ).
pub fn read_sequences(path: &str) -> Result<Vec<Read>> {
    let file = std::fs::File::open(path)?;
    if path.ends_with(".fa") || path.ends_with(".fasta") || path.ends_with(".fna") {
        ngs_seqio::read_fasta(file)
    } else {
        ngs_seqio::read_fastq(file)
    }
}

/// Write sequences to a path, dispatching on extension like
/// [`read_sequences`].
pub fn write_sequences(path: &str, reads: &[Read]) -> Result<()> {
    let file = std::fs::File::create(path)?;
    if path.ends_with(".fa") || path.ends_with(".fasta") || path.ends_with(".fna") {
        ngs_seqio::write_fasta(file, reads, 70)
    } else {
        ngs_seqio::write_fastq(file, reads)
    }
}

/// Build the collector for a `--metrics-json` run: recording when the flag
/// was given, disabled (every call a no-op) otherwise — un-instrumented
/// runs pay nothing.
pub fn metrics_collector(args: &Args) -> ngs_observe::Collector {
    if args.get("metrics-json").is_some() {
        ngs_observe::Collector::new()
    } else {
        ngs_observe::Collector::disabled()
    }
}

/// When `--metrics-json PATH` was given: snapshot `collector` into a report
/// for `pipeline`, fail if any `required` span is absent (the smoke-bench
/// gate), print the human table to stderr and write the machine JSON
/// (`BENCH_<pipeline>.json` schema) to PATH.
pub fn emit_metrics(
    args: &Args,
    collector: &ngs_observe::Collector,
    pipeline: &str,
    required: &[&str],
) -> Result<()> {
    let Some(path) = args.get("metrics-json") else {
        return Ok(());
    };
    let report = collector.report(pipeline);
    let missing = report.missing_spans(required);
    if !missing.is_empty() {
        return Err(NgsError::InvalidParameter(format!(
            "metrics report for {pipeline} is missing required spans: {}",
            missing.join(", ")
        )));
    }
    eprint!("{}", report.render_table());
    std::fs::write(path, report.to_json())?;
    eprintln!("wrote metrics to {path}");
    Ok(())
}

/// Print usage and exit when `--help` was requested.
pub fn usage_gate(args: &Args, usage: &str) {
    if args.has_flag("help") {
        println!("{usage}");
        std::process::exit(0);
    }
}

/// Standard error-and-exit wrapper for binary main functions.
pub fn run_main(result: Result<()>) {
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_key_values_and_flags() {
        let a = parse(&["--input", "x.fastq", "--verbose", "--k", "13"]);
        assert_eq!(a.get("input"), Some("x.fastq"));
        assert!(a.has_flag("verbose"));
        assert_eq!(a.get_parsed::<usize>("k", 0).unwrap(), 13);
    }

    #[test]
    fn missing_required_is_error() {
        let a = parse(&["--k", "13"]);
        assert!(a.require("input").is_err());
        assert_eq!(a.require("k").unwrap(), "13");
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&[]);
        assert_eq!(a.get_parsed::<f64>("rate", 0.01).unwrap(), 0.01);
        assert_eq!(a.get_f64_list("thresholds", &[0.8, 0.6]).unwrap(), vec![0.8, 0.6]);
    }

    #[test]
    fn float_lists_parse() {
        let a = parse(&["--thresholds", "0.9, 0.7,0.5"]);
        assert_eq!(a.get_f64_list("thresholds", &[]).unwrap(), vec![0.9, 0.7, 0.5]);
    }

    #[test]
    fn bad_values_are_errors() {
        let a = parse(&["--k", "wat"]);
        assert!(a.get_parsed::<usize>("k", 1).is_err());
        let a = parse(&["--thresholds", "0.9,x"]);
        assert!(a.get_f64_list("thresholds", &[]).is_err());
    }

    #[test]
    fn non_flag_leading_token_rejected() {
        assert!(Args::parse(vec!["positional".to_string()]).is_err());
    }

    #[test]
    fn sequence_io_round_trip_by_extension() {
        let dir = std::env::temp_dir().join(format!("ngs_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let reads = vec![Read::new("r1", b"ACGT"), Read::new("r2", b"GGNTA")];
        for name in ["x.fasta", "x.fastq"] {
            let path = dir.join(name);
            let path = path.to_str().unwrap();
            write_sequences(path, &reads).unwrap();
            let back = read_sequences(path).unwrap();
            assert_eq!(back.len(), 2);
            assert_eq!(back[0].seq, reads[0].seq);
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}
