//! `ngs-cli` — command-line front ends for the ngs-correct tool suite.
//!
//! Binaries (all take `--key value` flags; `--help` prints usage):
//!
//! * `reptile-correct` — correct a FASTQ/FASTA file with Reptile;
//! * `redeem-detect` — REDEEM EM over a read set: per-k-mer `Y` and `T`
//!   estimates plus the §3.7 inferred threshold, as TSV;
//! * `closet-cluster` — CLOSET clustering at a threshold series, clusters
//!   as TSV;
//! * `assemble` — de Bruijn unitig assembly to FASTA;
//! * `simulate-reads` — generate a synthetic dataset with ground truth;
//! * `ngs-serve` — long-lived correction server over a unix/TCP socket;
//! * `ngs-client` — batch client for `ngs-serve` with retry/backoff;
//! * `ngs-loadgen` — closed-loop load generator + latency bench for
//!   `ngs-serve`.
//!
//! This module hosts the shared argument parser and I/O helpers so the
//! binaries stay thin and the logic is unit-testable.

use ngs_core::{NgsError, Read, Result};
use ngs_seqio::MalformedPolicy;
use std::collections::BTreeMap;

pub mod pipelines;
pub mod serving;

/// The registry every worker entry point resolves job specs against:
/// `mapreduce-lite`'s builtins plus CLOSET's Phase-I tasks. Driver and
/// worker must agree on this set, so there is exactly one builder.
pub fn worker_registry() -> mapreduce_lite::JobRegistry {
    let mut registry = mapreduce_lite::JobRegistry::with_builtins();
    closet::register_specs(&mut registry);
    registry
}

/// Hidden worker mode behind `--mr-worker` (and the `ngs-mr-worker`
/// binary): connect to the driver's socket and serve task attempts until
/// drained. `argv` is everything after the mode flag — socket path and
/// worker id. Returns the process exit code.
pub fn mr_worker_main(argv: &[String]) -> i32 {
    mapreduce_lite::worker_main(&worker_registry(), argv)
}

/// A parsed `--key value` command line.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    /// Bare `--flag` switches (no value).
    flags: Vec<String>,
}

impl Args {
    /// Parse a raw argument list (excluding the program name).
    ///
    /// Every `--key` consumes the following token as its value unless that
    /// token is itself a `--key`, in which case the first key is recorded
    /// as a bare flag. `--key=value` binds explicitly, which is how
    /// optional-value switches like `--profile-cpu[=HZ]` take a rate
    /// without swallowing the next token.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args> {
        let mut args = Args::default();
        let mut iter = argv.into_iter().peekable();
        while let Some(tok) = iter.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| NgsError::InvalidParameter(format!("expected --flag, got {tok:?}")))?
                .to_string();
            if key.is_empty() {
                return Err(NgsError::InvalidParameter("empty flag name".into()));
            }
            if let Some((k, v)) = key.split_once('=') {
                if k.is_empty() {
                    return Err(NgsError::InvalidParameter("empty flag name".into()));
                }
                args.values.insert(k.to_string(), v.to_string());
                continue;
            }
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().unwrap();
                    args.values.insert(key, value);
                }
                _ => args.flags.push(key),
            }
        }
        Ok(args)
    }

    /// True when the bare flag was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A string value, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A string value, if present — but erroring when the key was given as
    /// a *bare* flag (e.g. `--k` as the last token, or `--k --verbose`):
    /// the user clearly meant to supply a value and dropping to the default
    /// would silently misconfigure the run.
    pub fn value_of(&self, name: &str) -> Result<Option<&str>> {
        match self.get(name) {
            Some(v) => Ok(Some(v)),
            None if self.has_flag(name) => {
                Err(NgsError::InvalidParameter(format!("missing value for --{name}")))
            }
            None => Ok(None),
        }
    }

    /// A required string value.
    pub fn require(&self, name: &str) -> Result<&str> {
        self.value_of(name)?
            .ok_or_else(|| NgsError::InvalidParameter(format!("missing required --{name}")))
    }

    /// A parsed value with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T> {
        match self.value_of(name)? {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| NgsError::InvalidParameter(format!("--{name}: cannot parse {s:?}"))),
        }
    }

    /// A comma-separated list of floats.
    pub fn get_f64_list(&self, name: &str, default: &[f64]) -> Result<Vec<f64>> {
        match self.value_of(name)? {
            None => Ok(default.to_vec()),
            Some(s) => s
                .split(',')
                .map(|tok| {
                    tok.trim().parse::<f64>().map_err(|_| {
                        NgsError::InvalidParameter(format!("--{name}: bad float {tok:?}"))
                    })
                })
                .collect(),
        }
    }
}

fn is_fasta_path(path: &str) -> bool {
    path.ends_with(".fa") || path.ends_with(".fasta") || path.ends_with(".fna")
}

/// Read sequences from a path, dispatching on extension (`.fa`/`.fasta` →
/// FASTA, anything else → FASTQ). Fails fast on the first malformed record.
pub fn read_sequences(path: &str) -> Result<Vec<Read>> {
    Ok(read_sequences_with_policy(path, MalformedPolicy::FailFast)?.0)
}

/// [`read_sequences`] under an explicit [`MalformedPolicy`]; also returns
/// how many malformed records were skipped (always 0 under
/// [`MalformedPolicy::FailFast`]).
pub fn read_sequences_with_policy(
    path: &str,
    policy: MalformedPolicy,
) -> Result<(Vec<Read>, usize)> {
    let file = std::fs::File::open(path)?;
    if is_fasta_path(path) {
        ngs_seqio::read_fasta_with_policy(file, policy)
    } else {
        ngs_seqio::read_fastq_with_policy(file, policy)
    }
}

/// [`read_sequences_with_policy`] ticking the `seqio.bytes_read` /
/// `seqio.records_read` counters on `collector` while reading, so a live
/// progress meter has throughput and an ETA denominator.
pub fn read_sequences_observed(
    path: &str,
    policy: MalformedPolicy,
    collector: &ngs_observe::Collector,
) -> Result<(Vec<Read>, usize)> {
    let file = std::fs::File::open(path)?;
    if is_fasta_path(path) {
        ngs_seqio::read_fasta_observed(file, policy, collector)
    } else {
        ngs_seqio::read_fastq_observed(file, policy, collector)
    }
}

/// Write sequences to a path, dispatching on extension like
/// [`read_sequences`]. The write is atomic (tmp + rename): a crash mid-way
/// leaves the destination untouched, never truncated.
pub fn write_sequences(path: &str, reads: &[Read]) -> Result<()> {
    let mut file = ngs_durable::AtomicFile::create(path)?;
    if is_fasta_path(path) {
        ngs_seqio::write_fasta(&mut file, reads, 70)?;
    } else {
        ngs_seqio::write_fastq(&mut file, reads)?;
    }
    file.commit()?;
    Ok(())
}

/// The `--profile-cpu[=HZ]` sampling rate: `None` when the flag is
/// absent, the default 97 Hz for the bare flag, an explicit rate for
/// `--profile-cpu=250` (or `--profile-cpu 250`).
pub fn profile_cpu_hz(args: &Args) -> Result<Option<u32>> {
    if let Some(raw) = args.get("profile-cpu") {
        let hz: u32 = raw.parse().map_err(|_| {
            NgsError::InvalidParameter(format!("--profile-cpu: bad sampling rate {raw:?}"))
        })?;
        if hz == 0 || hz > 10_000 {
            return Err(NgsError::InvalidParameter(format!(
                "--profile-cpu: sampling rate must be 1..=10000 Hz, got {hz}"
            )));
        }
        Ok(Some(hz))
    } else if args.has_flag("profile-cpu") {
        Ok(Some(ngs_observe::profile::DEFAULT_HZ))
    } else {
        Ok(None)
    }
}

/// Build the collector for an instrumented run: recording when any
/// observability flag was given — `--metrics-json`, `--trace-jsonl` (with
/// an event tracer attached), `--resource-jsonl`, `--profile-mem`,
/// `--profile-cpu` or `--progress` — disabled (every call a no-op)
/// otherwise, so un-instrumented runs pay nothing.
pub fn metrics_collector(args: &Args) -> Result<ngs_observe::Collector> {
    let recording = args.value_of("metrics-json")?.is_some()
        || args.value_of("resource-jsonl")?.is_some()
        || args.has_flag("profile-mem")
        || profile_cpu_hz(args)?.is_some()
        || args.has_flag("progress");
    Ok(if args.value_of("trace-jsonl")?.is_some() {
        ngs_observe::Collector::with_tracer(std::sync::Arc::new(ngs_observe::Tracer::new()))
    } else if recording {
        ngs_observe::Collector::new()
    } else {
        ngs_observe::Collector::disabled()
    })
}

/// When `--metrics-json PATH` was given: snapshot `collector` into a report
/// for `pipeline`, fail if any `required` span is absent (the smoke-bench
/// gate), print the human table to stderr and write the machine JSON
/// (`BENCH_<pipeline>.json` schema) to PATH.
pub fn emit_metrics(
    args: &Args,
    collector: &ngs_observe::Collector,
    pipeline: &str,
    required: &[&str],
) -> Result<()> {
    let Some(path) = args.value_of("metrics-json")? else {
        return Ok(());
    };
    let report = collector.report(pipeline);
    let missing = report.missing_spans(required);
    if !missing.is_empty() {
        return Err(NgsError::InvalidParameter(format!(
            "metrics report for {pipeline} is missing required spans: {}",
            missing.join(", ")
        )));
    }
    eprint!("{}", report.render_table());
    ngs_durable::write_atomic(path, report.to_json().as_bytes())?;
    eprintln!("wrote metrics to {path}");
    Ok(())
}

/// When `--trace-jsonl PATH` was given: serialise the collector's trace
/// buffer as JSONL (`ngs-trace` schema, version 2) and write it atomically
/// — a crash mid-write never leaves a torn trace file. Call this after
/// every span guard (including the pipeline's root span) has dropped, or
/// the trace will contain dangling begins.
///
/// A run that stitched in worker traces (pooled `--mr-workers`) also
/// writes one component file per process — `PATH.driver`,
/// `PATH.worker0`, … — so `ngs-trace merge` can be exercised on real
/// per-process files; the stitched PATH is already the merged view.
pub fn emit_trace(args: &Args, collector: &ngs_observe::Collector) -> Result<()> {
    let Some(path) = args.value_of("trace-jsonl")? else {
        return Ok(());
    };
    let tracer = collector.tracer().ok_or_else(|| {
        NgsError::InvalidParameter("--trace-jsonl given but the collector has no tracer".into())
    })?;
    ngs_durable::write_atomic(path, tracer.to_jsonl().as_bytes())?;
    eprintln!("wrote trace to {path}");

    let foreign: Vec<_> =
        tracer.processes().into_iter().filter(|m| m.pid != tracer.pid()).collect();
    // In-process pooled runs share one pid; a per-pid partition would just
    // duplicate the stitched file, so components are only written when a
    // genuinely foreign process contributed events.
    if !foreign.is_empty() {
        let own = ngs_observe::trace::ProcessMeta {
            pid: tracer.pid(),
            role: "driver".into(),
            clock_offset_ns: 0,
        };
        let mut role_count: BTreeMap<&str, usize> = BTreeMap::new();
        for m in &foreign {
            *role_count.entry(m.role.as_str()).or_default() += 1;
        }
        for meta in std::iter::once(&own).chain(&foreign) {
            // A run that launched several pools (e.g. one job per
            // threshold) re-uses worker roles across distinct processes;
            // the pid keeps each process its own file.
            let name = if role_count.get(meta.role.as_str()).is_some_and(|&n| n > 1) {
                format!("{}-{}", meta.role, meta.pid)
            } else {
                meta.role.clone()
            };
            let component = format!("{path}.{name}");
            ngs_durable::write_atomic(&component, tracer.to_jsonl_for_pid(meta).as_bytes())?;
            eprintln!("wrote {name} component to {component}");
        }
    }
    Ok(())
}

/// Print usage and exit when `--help` was requested.
pub fn usage_gate(args: &Args, usage: &str) {
    if args.has_flag("help") {
        println!("{usage}");
        std::process::exit(0);
    }
}

/// Exit code for a failed run: 2 for usage/parameter errors (the caller
/// typed something wrong — distinct from runtime failure so scripts and CI
/// can tell "fix the command line" from "the run broke"), 1 otherwise.
pub fn error_exit_code(e: &NgsError) -> i32 {
    match e {
        NgsError::InvalidParameter(_) => 2,
        _ => 1,
    }
}

/// Standard error-and-exit wrapper for binary main functions.
pub fn run_main(result: Result<()>) {
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(error_exit_code(&e));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_key_values_and_flags() {
        let a = parse(&["--input", "x.fastq", "--verbose", "--k", "13"]);
        assert_eq!(a.get("input"), Some("x.fastq"));
        assert!(a.has_flag("verbose"));
        assert_eq!(a.get_parsed::<usize>("k", 0).unwrap(), 13);
    }

    #[test]
    fn missing_required_is_error() {
        let a = parse(&["--k", "13"]);
        assert!(a.require("input").is_err());
        assert_eq!(a.require("k").unwrap(), "13");
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&[]);
        assert_eq!(a.get_parsed::<f64>("rate", 0.01).unwrap(), 0.01);
        assert_eq!(a.get_f64_list("thresholds", &[0.8, 0.6]).unwrap(), vec![0.8, 0.6]);
    }

    #[test]
    fn float_lists_parse() {
        let a = parse(&["--thresholds", "0.9, 0.7,0.5"]);
        assert_eq!(a.get_f64_list("thresholds", &[]).unwrap(), vec![0.9, 0.7, 0.5]);
    }

    #[test]
    fn bad_values_are_errors() {
        let a = parse(&["--k", "wat"]);
        assert!(a.get_parsed::<usize>("k", 1).is_err());
        let a = parse(&["--thresholds", "0.9,x"]);
        assert!(a.get_f64_list("thresholds", &[]).is_err());
    }

    #[test]
    fn non_flag_leading_token_rejected() {
        assert!(Args::parse(vec!["positional".to_string()]).is_err());
    }

    #[test]
    fn equals_form_binds_without_consuming_the_next_token() {
        let a = parse(&["--profile-cpu=250", "--input", "x.fastq"]);
        assert_eq!(a.get("profile-cpu"), Some("250"));
        assert_eq!(a.get("input"), Some("x.fastq"));
        // Empty key is still rejected.
        assert!(Args::parse(vec!["--=5".to_string()]).is_err());
        // Value may itself contain '=' (only the first splits).
        let a = parse(&["--define=a=b"]);
        assert_eq!(a.get("define"), Some("a=b"));
    }

    #[test]
    fn profile_cpu_flag_parses_rate_and_default() {
        assert_eq!(profile_cpu_hz(&parse(&[])).unwrap(), None);
        assert_eq!(
            profile_cpu_hz(&parse(&["--profile-cpu"])).unwrap(),
            Some(ngs_observe::profile::DEFAULT_HZ)
        );
        assert_eq!(profile_cpu_hz(&parse(&["--profile-cpu=250"])).unwrap(), Some(250));
        assert_eq!(profile_cpu_hz(&parse(&["--profile-cpu", "42"])).unwrap(), Some(42));
        assert!(profile_cpu_hz(&parse(&["--profile-cpu=0"])).is_err());
        assert!(profile_cpu_hz(&parse(&["--profile-cpu=wat"])).is_err());
        assert!(profile_cpu_hz(&parse(&["--profile-cpu=99999"])).is_err());
        // The flag alone makes the collector record.
        assert!(metrics_collector(&parse(&["--profile-cpu"])).unwrap().is_enabled());
        assert!(!metrics_collector(&parse(&[])).unwrap().is_enabled());
    }

    #[test]
    fn flag_missing_its_value_is_an_error_not_a_silent_default() {
        // `--k` as the last token: the value was forgotten, not omitted.
        let a = parse(&["--input", "x.fastq", "--k"]);
        let err = a.get_parsed::<usize>("k", 13).unwrap_err();
        assert!(err.to_string().contains("missing value for --k"), "got: {err}");
        assert!(a.require("k").is_err());
        assert!(a.value_of("k").is_err());
        // Same when the next token is another flag.
        let a = parse(&["--thresholds", "--verbose"]);
        assert!(a.get_f64_list("thresholds", &[0.8]).is_err());
        // Genuinely absent keys still default cleanly.
        assert_eq!(a.get_parsed::<usize>("k", 13).unwrap(), 13);
        // Intentional bare switches are unaffected.
        assert!(a.has_flag("verbose"));
    }

    #[test]
    fn exit_codes_distinguish_usage_from_runtime_errors() {
        assert_eq!(error_exit_code(&NgsError::InvalidParameter("--threads: bad".into())), 2);
        assert_eq!(error_exit_code(&NgsError::MalformedRecord("truncated record".into())), 1);
        assert_eq!(error_exit_code(&NgsError::Io("disk gone".into())), 1);
    }

    #[test]
    fn policy_reader_reports_skips() {
        let dir = std::env::temp_dir().join(format!("ngs_cli_policy_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.fastq");
        std::fs::write(&path, "@r1\nACGT\n+\n!!!!\n@broken\nACGT\n@r2\nTTTT\n+\n!!!!\n").unwrap();
        let path = path.to_str().unwrap();
        assert!(read_sequences(path).is_err());
        let (reads, skipped) =
            read_sequences_with_policy(path, MalformedPolicy::Skip { max: 5 }).unwrap();
        assert!(!reads.is_empty());
        assert!(skipped >= 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sequence_io_round_trip_by_extension() {
        let dir = std::env::temp_dir().join(format!("ngs_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let reads = vec![Read::new("r1", b"ACGT"), Read::new("r2", b"GGNTA")];
        for name in ["x.fasta", "x.fastq"] {
            let path = dir.join(name);
            let path = path.to_str().unwrap();
            write_sequences(path, &reads).unwrap();
            let back = read_sequences(path).unwrap();
            assert_eq!(back.len(), 2);
            assert_eq!(back[0].seq, reads[0].seq);
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}
